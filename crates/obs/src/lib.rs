//! Lightweight observability primitives for the allocator pipeline.
//!
//! The paper's claims are quantitative — the HBPS-chosen AA stays within
//! one bin width of the true best, CP-boundary rebalances stay cheap,
//! TopAA makes first-CP time size-independent — and this crate is how the
//! rest of the workspace watches those quantities live. A [`Registry`]
//! hands out three kinds of named instruments:
//!
//! * [`Counter`] — monotonically increasing `u64` (events, blocks, pages);
//! * [`Gauge`] — a last-written `f64` (fractions, occupancy);
//! * [`Histogram`] — fixed upper-bound buckets over `f64` observations,
//!   with running count, sum, and max.
//!
//! Instruments are cheap handles (an `Arc` around atomics) that can be
//! cloned out of the registry once and bumped from hot paths without a
//! lock; the registry mutex is touched only at registration and snapshot
//! time. All updates are relaxed atomic read-modify-writes, so handles
//! are safe to bump concurrently from the sharded CP pipeline's worker
//! threads — no increment is ever lost, though cross-instrument
//! ordering is unspecified mid-CP (snapshots are taken at CP
//! boundaries, after the workers have joined). [`Registry::snapshot_json`] renders everything as one
//! deterministic JSON object so harness reports and CI smoke checks can
//! embed or parse a metrics block.
//!
//! Nothing in the metrics layer reads a clock: durations recorded through
//! counters/gauges/histograms come from the workspace's simulated cost
//! model, never `std::time`, so hot paths stay deterministic and
//! wall-clock-free. The [`trace`] flight recorder is the one deliberate
//! exception: it stamps journal events from a monotonic clock anchored at
//! tracer creation, purely for export — trace timestamps never feed back
//! into the simulation.

#![warn(missing_docs)]

pub mod trace;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Registry-wide counter of NaN observations dropped by
/// [`Histogram::observe`] (see the skip-and-count note there).
pub const NAN_OBSERVATIONS: &str = "obs.nan_observations";

/// A monotonically increasing event counter.
///
/// Cloning shares the underlying cell; increments are relaxed atomics so a
/// counter can be bumped from `&self` contexts (e.g. audits over an
/// immutable aggregate) and from parallel CP phases.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n` to the counter.
    pub fn inc(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins `f64` gauge (stored as bits in an atomic).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrite the gauge with `v`.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value (0.0 until first `set`).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Ascending bucket upper bounds; an implicit `+inf` bucket follows.
    bounds: Vec<f64>,
    /// One count per bound, plus the overflow bucket at the end.
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    /// Running sum of observations, stored as `f64` bits (CAS loop).
    sum_bits: AtomicU64,
    /// Largest observation so far, stored as `f64` bits (CAS loop).
    max_bits: AtomicU64,
    /// The registry-wide [`NAN_OBSERVATIONS`] counter, bumped for every
    /// dropped NaN observation.
    nan: Counter,
}

/// A fixed-bucket histogram over `f64` observations.
///
/// Buckets are cumulative-style upper bounds chosen at registration; an
/// implicit unbounded bucket catches everything above the last bound. The
/// running `sum`, `count`, and `max` make means and worst-cases readable
/// without bucket arithmetic — `max` in particular is what the CI smoke
/// check asserts against for the chosen-score error bound.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    fn new(bounds: &[f64], nan: Counter) -> Histogram {
        let mut b: Vec<f64> = bounds.iter().copied().filter(|x| x.is_finite()).collect();
        b.sort_by(|x, y| x.partial_cmp(y).expect("finite bounds"));
        b.dedup();
        let counts = (0..b.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramInner {
            bounds: b,
            counts,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            nan,
        }))
    }

    /// Record one observation.
    ///
    /// NaN observations are skipped and counted instead of recorded: a
    /// single NaN would fail every bound comparison (landing in the
    /// overflow bucket) and then permanently poison `sum`/`mean` through
    /// the CAS loop — `NaN + x` is NaN forever after. Dropped NaNs bump
    /// the registry-wide [`NAN_OBSERVATIONS`] counter first and
    /// `debug_assert!` so debug builds surface the emitting call site.
    pub fn observe(&self, v: f64) {
        let inner = &*self.0;
        if v.is_nan() {
            inner.nan.inc(1);
            debug_assert!(
                false,
                "NaN histogram observation dropped ({NAN_OBSERVATIONS})"
            );
            return;
        }
        let idx = inner
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(inner.bounds.len());
        inner.counts[idx].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        fetch_update_f64(&inner.sum_bits, |cur| cur + v);
        fetch_update_f64(&inner.max_bits, |cur| cur.max(v));
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// Largest observation, or 0.0 when empty.
    pub fn max(&self) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            f64::from_bits(self.0.max_bits.load(Ordering::Relaxed))
        }
    }

    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Bucket upper bounds (without the implicit `+inf` bucket).
    pub fn bounds(&self) -> &[f64] {
        &self.0.bounds
    }

    /// Per-bucket counts; one entry per bound plus the overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Bucket-interpolated quantile estimate (Prometheus-style).
    ///
    /// Walks the cumulative bucket counts to the bucket containing rank
    /// `q * count` and interpolates linearly inside it, taking `0.0` as
    /// the lower edge of the first bucket (every histogram in this
    /// workspace observes non-negative µs/count/width values). Ranks that
    /// land in the unbounded overflow bucket report [`Histogram::max`],
    /// the only upper edge that bucket has. Returns `0.0` when empty;
    /// `q` is clamped to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * total as f64;
        let bounds = self.bounds();
        let mut cum = 0u64;
        for (i, c) in self.bucket_counts().into_iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c;
            if next as f64 >= rank {
                if i >= bounds.len() {
                    return self.max();
                }
                let lo = if i == 0 { 0.0 } else { bounds[i - 1] };
                let hi = bounds[i];
                let frac = ((rank - cum as f64) / c as f64).clamp(0.0, 1.0);
                return lo + (hi - lo) * frac;
            }
            cum = next;
        }
        self.max()
    }
}

/// Relaxed CAS-loop read-modify-write on an `f64` stored as bits.
fn fetch_update_f64(cell: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur)).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(observed) => cur = observed,
        }
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// A named collection of instruments.
///
/// Cloning shares the collection, so one registry can be threaded through
/// every layer of the allocator pipeline and snapshotted from the harness.
/// Registration is idempotent: asking for an existing name returns the
/// existing instrument (for histograms the original bounds win).
#[derive(Clone, Debug, Default)]
pub struct Registry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().expect("obs registry poisoned");
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().expect("obs registry poisoned");
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    /// Get or create the histogram named `name` with the given bucket
    /// upper bounds (ignored if the histogram already exists).
    ///
    /// Creating the first histogram also registers the shared
    /// [`NAN_OBSERVATIONS`] counter every histogram reports dropped NaN
    /// observations to.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        let mut inner = self.inner.lock().expect("obs registry poisoned");
        let nan = inner
            .counters
            .entry(NAN_OBSERVATIONS.to_string())
            .or_default()
            .clone();
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds, nan))
            .clone()
    }

    /// Value of the counter named `name`, if registered.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        let inner = self.inner.lock().expect("obs registry poisoned");
        inner.counters.get(name).map(|c| c.get())
    }

    /// Value of the gauge named `name`, if registered.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        let inner = self.inner.lock().expect("obs registry poisoned");
        inner.gauges.get(name).map(|g| g.get())
    }

    /// The histogram named `name`, if registered.
    pub fn histogram_handle(&self, name: &str) -> Option<Histogram> {
        let inner = self.inner.lock().expect("obs registry poisoned");
        inner.histograms.get(name).cloned()
    }

    /// Render every instrument as one compact, deterministic JSON object:
    ///
    /// ```json
    /// {"counters":{..},"gauges":{..},
    ///  "histograms":{"name":{"bounds":[..],"counts":[..],
    ///                        "count":n,"sum":s,"max":m,"mean":a,
    ///                        "p50":q,"p95":q,"p99":q}}}
    /// ```
    ///
    /// Keys are sorted (BTreeMap order); floats render via `to_string`,
    /// with non-finite values mapped to `null` like the serde shim does.
    pub fn snapshot_json(&self) -> String {
        let inner = self.inner.lock().expect("obs registry poisoned");
        let mut out = String::with_capacity(1024);
        out.push_str("{\"counters\":{");
        push_entries(&mut out, inner.counters.iter(), |out, c| {
            out.push_str(&c.get().to_string());
        });
        out.push_str("},\"gauges\":{");
        push_entries(&mut out, inner.gauges.iter(), |out, g| {
            push_f64(out, g.get());
        });
        out.push_str("},\"histograms\":{");
        push_entries(&mut out, inner.histograms.iter(), |out, h| {
            out.push_str("{\"bounds\":[");
            for (i, b) in h.bounds().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_f64(out, *b);
            }
            out.push_str("],\"counts\":[");
            for (i, c) in h.bucket_counts().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&c.to_string());
            }
            out.push_str("],\"count\":");
            out.push_str(&h.count().to_string());
            out.push_str(",\"sum\":");
            push_f64(out, h.sum());
            out.push_str(",\"max\":");
            push_f64(out, h.max());
            out.push_str(",\"mean\":");
            push_f64(out, h.mean());
            out.push_str(",\"p50\":");
            push_f64(out, h.quantile(0.50));
            out.push_str(",\"p95\":");
            push_f64(out, h.quantile(0.95));
            out.push_str(",\"p99\":");
            push_f64(out, h.quantile(0.99));
            out.push('}');
        });
        out.push_str("}}");
        out
    }
}

fn push_entries<'a, T: 'a>(
    out: &mut String,
    entries: impl Iterator<Item = (&'a String, &'a T)>,
    write_value: impl Fn(&mut String, &T),
) {
    let mut first = true;
    for (name, value) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        push_json_string(out, name);
        out.push(':');
        write_value(out, value);
    }
}

pub(crate) fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&v.to_string());
    } else {
        out.push_str("null");
    }
}

pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share() {
        let reg = Registry::new();
        let a = reg.counter("x.events");
        let b = reg.counter("x.events"); // same instrument
        a.inc(3);
        b.inc(2);
        assert_eq!(a.get(), 5);
        assert_eq!(reg.counter_value("x.events"), Some(5));
        assert_eq!(reg.counter_value("missing"), None);
    }

    #[test]
    fn gauges_last_write_wins() {
        let reg = Registry::new();
        let g = reg.gauge("free_fraction");
        assert_eq!(g.get(), 0.0);
        g.set(0.25);
        g.set(0.75);
        assert_eq!(reg.gauge_value("free_fraction"), Some(0.75));
    }

    #[test]
    fn histogram_buckets_count_sum_max() {
        let reg = Registry::new();
        let h = reg.histogram("lat_us", &[1.0, 10.0, 100.0]);
        for v in [0.5, 5.0, 5.0, 50.0, 500.0] {
            h.observe(v);
        }
        assert_eq!(h.bucket_counts(), vec![1, 2, 1, 1]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 560.5);
        assert_eq!(h.max(), 500.0);
        assert!((h.mean() - 112.1).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_reports_zero_max() {
        let reg = Registry::new();
        let h = reg.histogram("empty", &[1.0]);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn histogram_reregistration_keeps_original_bounds() {
        let reg = Registry::new();
        let a = reg.histogram("h", &[1.0, 2.0]);
        let b = reg.histogram("h", &[99.0]);
        assert_eq!(a.bounds(), b.bounds());
        assert_eq!(b.bounds(), &[1.0, 2.0]);
    }

    #[test]
    fn observation_above_all_bounds_lands_in_overflow() {
        let reg = Registry::new();
        let h = reg.histogram("h", &[1.0]);
        h.observe(2.0);
        assert_eq!(h.bucket_counts(), vec![0, 1]);
    }

    #[test]
    fn snapshot_is_deterministic_sorted_json() {
        let reg = Registry::new();
        reg.counter("b.second").inc(2);
        reg.counter("a.first").inc(1);
        reg.gauge("g").set(1.5);
        let h = reg.histogram("h", &[1.0, 2.0]);
        h.observe(0.5);
        h.observe(3.0);
        let json = reg.snapshot_json();
        assert_eq!(
            json,
            "{\"counters\":{\"a.first\":1,\"b.second\":2,\"obs.nan_observations\":0},\
             \"gauges\":{\"g\":1.5},\
             \"histograms\":{\"h\":{\"bounds\":[1,2],\"counts\":[1,0,1],\
             \"count\":2,\"sum\":3.5,\"max\":3,\"mean\":1.75,\
             \"p50\":1,\"p95\":3,\"p99\":3}}}"
        );
        assert_eq!(json, reg.snapshot_json());
    }

    #[test]
    fn cloned_registry_shares_instruments() {
        let reg = Registry::new();
        let clone = reg.clone();
        reg.counter("shared").inc(7);
        assert_eq!(clone.counter_value("shared"), Some(7));
    }

    #[test]
    fn handles_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Registry>();
        assert_send_sync::<Counter>();
        assert_send_sync::<Gauge>();
        assert_send_sync::<Histogram>();
    }

    /// Shard-safety: concurrent increments from worker threads (the
    /// sharded CP pipeline's usage) lose nothing.
    #[test]
    fn counters_survive_contended_increments() {
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 10_000;
        let reg = Registry::new();
        let c = reg.counter("contended.events");
        let h = reg.histogram("contended.lat", &[10.0]);
        let workers: Vec<_> = (0..THREADS)
            .map(|_| {
                let (c, h) = (c.clone(), h.clone());
                std::thread::spawn(move || {
                    for _ in 0..PER_THREAD {
                        c.inc(1);
                        h.observe(1.0);
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(c.get(), THREADS * PER_THREAD);
        assert_eq!(h.count(), THREADS * PER_THREAD);
        assert_eq!(h.sum(), (THREADS * PER_THREAD) as f64);
        assert_eq!(h.bucket_counts(), vec![THREADS * PER_THREAD, 0]);
    }

    /// Regression: a NaN observation used to land in the overflow bucket
    /// and poison `sum`/`mean` permanently through the CAS loop. It is
    /// now skipped and counted (and asserts in debug builds so the
    /// emitting site is findable).
    #[test]
    fn nan_observation_is_skipped_and_counted() {
        let reg = Registry::new();
        let h = reg.histogram("lat_us", &[1.0, 10.0]);
        h.observe(0.5);
        let observe_nan = {
            let h = h.clone();
            move || h.observe(f64::NAN)
        };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(observe_nan));
        // The debug_assert fires in debug builds; release builds drop the
        // observation silently. The counter is bumped before the assert,
        // so state is identical either way.
        assert_eq!(outcome.is_err(), cfg!(debug_assertions));
        assert_eq!(reg.counter_value(NAN_OBSERVATIONS), Some(1));
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 0.5);
        assert_eq!(h.max(), 0.5);
        assert_eq!(h.bucket_counts(), vec![1, 0, 0]);
        // Later observations still work: the histogram was not poisoned.
        h.observe(2.0);
        assert_eq!(h.sum(), 2.5);
        assert!((h.mean() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("q", &[10.0, 100.0]);
        assert_eq!(h.quantile(0.5), 0.0); // empty
        for _ in 0..90 {
            h.observe(5.0); // bucket [0, 10]
        }
        for _ in 0..10 {
            h.observe(50.0); // bucket (10, 100]
        }
        // p50: rank 50 inside the first bucket -> 10 * 50/90.
        assert!((h.quantile(0.50) - 10.0 * (50.0 / 90.0)).abs() < 1e-9);
        // p95: rank 95, 5 observations into the second bucket of 10.
        assert!((h.quantile(0.95) - (10.0 + 90.0 * 0.5)).abs() < 1e-9);
        // p90 boundary lands exactly on the first bucket's upper edge.
        assert!((h.quantile(0.90) - 10.0).abs() < 1e-9);
        assert_eq!(h.quantile(1.0), 100.0);
    }

    #[test]
    fn quantile_in_overflow_bucket_reports_max() {
        let reg = Registry::new();
        let h = reg.histogram("q", &[1.0]);
        h.observe(0.5);
        h.observe(250.0);
        h.observe(500.0);
        assert_eq!(h.quantile(0.99), 500.0);
        assert!((h.quantile(0.30) - 0.9).abs() < 1e-9); // rank 0.9 of 1 obs in [0,1]
    }
}
