//! Flight-recorder trace journal for the CP pipeline.
//!
//! The metrics registry answers "how much" at CP boundaries; this module
//! answers "what happened, when, on which shard" *inside* a CP. A
//! [`Tracer`] is a lock-light, bounded journal of typed [`TraceEvent`]s —
//! CP phase spans, allocator lease/steal/cursor events, scrub and health
//! transitions, mount phases — that worker threads append to without ever
//! blocking the hot path:
//!
//! * appending claims a slot with one relaxed `fetch_add` on the write
//!   cursor; each slot is an uncontended per-slot mutex (no two writers
//!   ever claim the same slot, so the lock never waits);
//! * when the journal is full, events are dropped — never overwritten,
//!   never blocked on — and counted in the registry's
//!   `trace.dropped_events` counter;
//! * every event carries the CP sequence number it belongs to, so events
//!   are causally ordered per CP even when shard workers emit them
//!   concurrently.
//!
//! Timestamps come from a monotonic clock anchored at tracer creation
//! (`µs` since the epoch). This is the one place in `wafl-obs` that reads
//! a clock: trace timestamps are export-only and never feed back into the
//! simulation.
//!
//! Two exporters render a journal:
//!
//! * [`chrome_trace_json`] — Chrome trace-event JSON loadable in
//!   `chrome://tracing` or Perfetto, one track per write shard plus a
//!   CP-engine track (`tid 0`);
//! * [`PerCpSeries`] — a per-CP time-series table of registry counter
//!   deltas, histogram-sum deltas, and gauge values, rendered as JSON or
//!   CSV.
//!
//! The matching [`parse_chrome_trace`] / [`validate_chrome_trace`] pair
//! (plus the minimal [`json`] parser underneath them — the workspace's
//! serde shim is serialize-only) lets `wafl-cli trace-report` and the CI
//! trace smoke re-read an exported file and prove every span begin has a
//! matching end on its track.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::{push_f64, push_json_string, Counter, Gauge, Histogram, Registry};

/// Name of the registry counter tracking events dropped by a full ring.
pub const DROPPED_EVENTS: &str = "trace.dropped_events";

/// One typed journal entry.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEvent {
    /// Microseconds since the tracer's epoch (span start for spans).
    pub ts_us: f64,
    /// CP sequence number the event belongs to (the value of the
    /// aggregate's CP counter when the event was emitted).
    pub cp: u64,
    /// Originating write shard, or `None` for the CP-engine track.
    pub shard: Option<u32>,
    /// The typed payload.
    pub data: TraceData,
}

/// The typed payload of a [`TraceEvent`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceData {
    /// A completed phase span: `ts_us` is the start, `dur_us` the
    /// measured wall duration, `model_us` the simulated cost model's
    /// duration for the same work (0 when the phase has no model term).
    /// Recording begin and end as one entry makes exported begin/end
    /// pairs balanced by construction even when the ring drops events.
    Span {
        /// Span name, e.g. `"cp.plan_physical"` or `"shard.drain"`.
        name: &'static str,
        /// Measured wall-clock duration in µs.
        dur_us: f64,
        /// Modeled duration in µs (0 when not modeled).
        model_us: f64,
    },
    /// A shard was granted an AA range lease by the lease manager.
    Lease {
        /// The leased allocation area.
        aa: u32,
        /// Blocks the lease was asked to supply.
        take: u64,
        /// Whether the lease was stolen from another shard's queue.
        stolen: bool,
    },
    /// The allocator fell back to a bitmap sweep for `picks` picks.
    SweepFallback {
        /// Sweep picks in this CP.
        picks: u64,
    },
    /// A volume's per-AA drain cursor was invalidated.
    CursorInvalidated {
        /// The owning volume id.
        vol: u32,
        /// Why, e.g. `"replenish"` or `"quarantine"`.
        reason: &'static str,
    },
    /// The scrubber quarantined structures after verified divergence.
    Quarantine {
        /// Structures quarantined by this event.
        units: u64,
    },
    /// The scrubber released repaired structures from quarantine.
    Release {
        /// Structures released by this event.
        units: u64,
    },
    /// The health state machine changed state (values as per the
    /// `health.state` gauge: 0 = Healthy, 1 = Degraded, 2 = ReadOnly).
    HealthChange {
        /// Previous state.
        from: u8,
        /// New state.
        to: u8,
    },
}

impl TraceData {
    /// The exported event name for this payload.
    pub fn name(&self) -> &'static str {
        match self {
            TraceData::Span { name, .. } => name,
            TraceData::Lease { .. } => "alloc.lease",
            TraceData::SweepFallback { .. } => "alloc.sweep_fallback",
            TraceData::CursorInvalidated { .. } => "alloc.cursor_invalidated",
            TraceData::Quarantine { .. } => "scrub.quarantine",
            TraceData::Release { .. } => "scrub.release",
            TraceData::HealthChange { .. } => "health.state",
        }
    }
}

struct TracerInner {
    epoch: Instant,
    /// Next slot to claim. May run past `slots.len()`; the excess is the
    /// number of dropped events.
    head: AtomicUsize,
    /// Pre-allocated journal slots. Each slot is written exactly once by
    /// the claiming thread, so its mutex never contends; `None` marks a
    /// claimed-but-not-yet-written slot during a racing snapshot.
    slots: Vec<Mutex<Option<TraceEvent>>>,
    dropped: Counter,
}

/// A bounded, lock-light trace journal. Cloning shares the journal, so
/// one handle can be pre-registered per subsystem and bumped from rayon
/// workers; all methods take `&self`.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl Tracer {
    /// Create a journal with room for `capacity` events (clamped to at
    /// least 1), registering its `trace.dropped_events` counter in
    /// `registry`.
    pub fn new(capacity: usize, registry: &Registry) -> Tracer {
        let capacity = capacity.max(1);
        Tracer {
            inner: Arc::new(TracerInner {
                epoch: Instant::now(),
                head: AtomicUsize::new(0),
                slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
                dropped: registry.counter(DROPPED_EVENTS),
            }),
        }
    }

    /// Microseconds elapsed since the tracer was created.
    pub fn now_us(&self) -> f64 {
        self.inner.epoch.elapsed().as_secs_f64() * 1e6
    }

    /// Append an event stamped with the current time.
    pub fn emit(&self, cp: u64, shard: Option<u32>, data: TraceData) {
        self.emit_at(self.now_us(), cp, shard, data);
    }

    /// Append an event with an explicit timestamp (used by the CP engine
    /// to journal a phase timeline reconstructed at the end of the CP).
    /// Claims a slot with one relaxed `fetch_add`; a full ring drops the
    /// event and bumps `trace.dropped_events` instead of blocking.
    pub fn emit_at(&self, ts_us: f64, cp: u64, shard: Option<u32>, data: TraceData) {
        let inner = &*self.inner;
        let idx = inner.head.fetch_add(1, Ordering::Relaxed);
        if idx >= inner.slots.len() {
            inner.dropped.inc(1);
            return;
        }
        let mut slot = inner.slots[idx].lock().expect("trace slot poisoned");
        *slot = Some(TraceEvent {
            ts_us,
            cp,
            shard,
            data,
        });
    }

    /// Journal capacity in events.
    pub fn capacity(&self) -> usize {
        self.inner.slots.len()
    }

    /// Events recorded so far (at most `capacity`).
    pub fn recorded(&self) -> usize {
        self.inner.head.load(Ordering::Relaxed).min(self.capacity())
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.get()
    }

    /// Snapshot the journal in claim order, skipping any slot a racing
    /// writer has claimed but not yet written. Intended for quiescent
    /// points (CP boundaries, end of run).
    pub fn events(&self) -> Vec<TraceEvent> {
        let n = self.recorded();
        let mut out = Vec::with_capacity(n);
        for slot in &self.inner.slots[..n] {
            if let Some(ev) = *slot.lock().expect("trace slot poisoned") {
                out.push(ev);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Chrome trace-event exporter
// ---------------------------------------------------------------------------

/// Map an event to its Chrome `tid`: the CP-engine track is `tid 0`,
/// shard `i` is `tid i + 1`.
fn tid_of(ev: &TraceEvent) -> u64 {
    match ev.shard {
        None => 0,
        Some(s) => s as u64 + 1,
    }
}

fn cat_of(name: &str) -> &str {
    name.split('.').next().unwrap_or(name)
}

fn push_event_header(out: &mut String, name: &str, ph: &str, ts: f64, tid: u64) {
    out.push_str("{\"name\":");
    push_json_string(out, name);
    out.push_str(",\"cat\":");
    push_json_string(out, cat_of(name));
    out.push_str(",\"ph\":\"");
    out.push_str(ph);
    out.push_str("\",\"ts\":");
    push_f64(out, ts);
    out.push_str(",\"pid\":1,\"tid\":");
    out.push_str(&tid.to_string());
}

fn push_instant(out: &mut String, ev: &TraceEvent) {
    push_event_header(out, ev.data.name(), "i", ev.ts_us, tid_of(ev));
    out.push_str(",\"s\":\"t\",\"args\":{\"cp\":");
    out.push_str(&ev.cp.to_string());
    match ev.data {
        TraceData::Lease { aa, take, stolen } => {
            out.push_str(&format!(
                ",\"aa\":{aa},\"take\":{take},\"stolen\":{}",
                stolen as u8
            ));
        }
        TraceData::SweepFallback { picks } => out.push_str(&format!(",\"picks\":{picks}")),
        TraceData::CursorInvalidated { vol, reason } => {
            out.push_str(&format!(",\"vol\":{vol},\"reason\":"));
            push_json_string(out, reason);
        }
        TraceData::Quarantine { units } | TraceData::Release { units } => {
            out.push_str(&format!(",\"units\":{units}"));
        }
        TraceData::HealthChange { from, to } => {
            out.push_str(&format!(",\"from\":{from},\"to\":{to}"));
        }
        TraceData::Span { .. } => unreachable!("spans are exported as B/E pairs"),
    }
    out.push_str("}}");
}

fn push_metadata(out: &mut String, name: &str, tid: Option<u64>, value: &str) {
    out.push_str("{\"name\":");
    push_json_string(out, name);
    out.push_str(",\"ph\":\"M\",\"pid\":1");
    if let Some(tid) = tid {
        out.push_str(&format!(",\"tid\":{tid}"));
    }
    out.push_str(",\"args\":{\"name\":");
    push_json_string(out, value);
    out.push_str("}}");
}

/// Render a journal snapshot as Chrome trace-event JSON
/// (`chrome://tracing` / Perfetto-loadable).
///
/// Tracks: `tid 0` is the CP-engine track; shard `i` gets `tid i + 1`,
/// with thread-name metadata emitted for all `shard_tracks` shards even
/// when a shard recorded nothing (so the track count always matches the
/// configured `write_shards`). Events are ordered CP-major — stable-sorted
/// by `(cp, ts)` — and each [`TraceData::Span`] expands to a balanced
/// `"B"`/`"E"` pair on its track. Spans on one track that overlap without
/// nesting (same shard serving two RAID groups concurrently on a
/// multi-core host) are clipped to the enclosing span's end so every
/// track's begin/end sequence stays well-formed; the span's `wall_us` arg
/// always carries the unclipped duration.
pub fn chrome_trace_json(events: &[TraceEvent], shard_tracks: usize) -> String {
    let mut sorted: Vec<&TraceEvent> = events.iter().collect();
    sorted.sort_by(|a, b| {
        (a.cp, a.ts_us)
            .partial_cmp(&(b.cp, b.ts_us))
            .expect("trace timestamps are finite")
    });

    let mut out = String::with_capacity(events.len() * 96 + 256);
    out.push_str("{\"traceEvents\":[");
    push_metadata(&mut out, "process_name", None, "wafl-sim");
    out.push(',');
    push_metadata(&mut out, "thread_name", Some(0), "cp-engine");
    for s in 0..shard_tracks {
        out.push(',');
        push_metadata(
            &mut out,
            "thread_name",
            Some(s as u64 + 1),
            &format!("shard {s}"),
        );
    }

    let mut tids: Vec<u64> = sorted.iter().map(|e| tid_of(e)).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        let track: Vec<&TraceEvent> = sorted
            .iter()
            .copied()
            .filter(|e| tid_of(e) == tid)
            .collect();
        push_track(&mut out, tid, &track);
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Emit one track's events: spans as nested B/E pairs (clipping
/// non-nesting overlap), instants merged in by timestamp.
fn push_track(out: &mut String, tid: u64, track: &[&TraceEvent]) {
    struct OpenSpan {
        name: &'static str,
        cp: u64,
        end: f64,
        wall_us: f64,
        model_us: f64,
    }
    let mut spans: Vec<(f64, f64, &TraceEvent)> = Vec::new();
    let mut instants: Vec<&TraceEvent> = Vec::new();
    for ev in track {
        match ev.data {
            TraceData::Span { dur_us, .. } => {
                spans.push((ev.ts_us, ev.ts_us + dur_us.max(0.0), ev))
            }
            _ => instants.push(ev),
        }
    }
    spans.sort_by(|a, b| {
        (a.0, -a.1)
            .partial_cmp(&(b.0, -b.1))
            .expect("trace timestamps are finite")
    });

    // Build the B/E stream with a stack walk; entries come out ordered by
    // timestamp with valid per-track nesting.
    let mut entries: Vec<(f64, String)> = Vec::new();
    let mut stack: Vec<OpenSpan> = Vec::new();
    let close = |entries: &mut Vec<(f64, String)>, open: OpenSpan| {
        let mut s = String::new();
        push_event_header(&mut s, open.name, "E", open.end, tid);
        s.push_str(&format!(",\"args\":{{\"cp\":{},\"wall_us\":", open.cp));
        push_f64(&mut s, open.wall_us);
        s.push_str(",\"model_us\":");
        push_f64(&mut s, open.model_us);
        s.push_str("}}");
        entries.push((open.end, s));
    };
    for (start, end, ev) in spans {
        while let Some(top) = stack.last() {
            if top.end <= start {
                let open = stack.pop().expect("non-empty stack");
                close(&mut entries, open);
            } else {
                break;
            }
        }
        let mut end = end;
        if let Some(top) = stack.last() {
            end = end.min(top.end);
        }
        let end = end.max(start);
        let (name, wall_us, model_us) = match ev.data {
            TraceData::Span {
                name,
                dur_us,
                model_us,
            } => (name, dur_us, model_us),
            _ => unreachable!("spans vec only holds Span events"),
        };
        let mut s = String::new();
        push_event_header(&mut s, name, "B", start, tid);
        s.push_str(&format!(",\"args\":{{\"cp\":{}}}}}", ev.cp));
        entries.push((start, s));
        stack.push(OpenSpan {
            name,
            cp: ev.cp,
            end,
            wall_us,
            model_us,
        });
    }
    while let Some(open) = stack.pop() {
        close(&mut entries, open);
    }

    // Merge instants into the fixed B/E stream by timestamp.
    let mut next_instant = 0usize;
    for (ts, rendered) in entries {
        while next_instant < instants.len() && instants[next_instant].ts_us < ts {
            out.push(',');
            push_instant(out, instants[next_instant]);
            next_instant += 1;
        }
        out.push(',');
        out.push_str(&rendered);
    }
    for ev in &instants[next_instant..] {
        out.push(',');
        push_instant(out, ev);
    }
}

// ---------------------------------------------------------------------------
// Per-CP time series
// ---------------------------------------------------------------------------

/// A per-CP time-series table: for every completed CP, the delta of each
/// tracked counter, the delta of each tracked histogram's `sum`, and the
/// current value of each tracked gauge.
///
/// Handles are resolved once at construction (registering the named
/// instruments if absent), so [`PerCpSeries::sample`] never takes the
/// registry lock — it is safe to call from the CP boundary of a hot run.
#[derive(Clone, Debug)]
pub struct PerCpSeries {
    counters: Vec<(String, Counter, u64)>,
    hist_sums: Vec<(String, Histogram, f64)>,
    gauges: Vec<(String, Gauge)>,
    rows: Vec<CpRow>,
}

/// One sampled row of a [`PerCpSeries`].
#[derive(Clone, Debug)]
pub struct CpRow {
    /// The CP sequence number the row describes.
    pub cp: u64,
    /// Values in column order: counter deltas, histogram-sum deltas,
    /// then gauge values.
    pub values: Vec<f64>,
}

impl PerCpSeries {
    /// Track the named instruments. Counter and histogram columns report
    /// per-CP deltas; gauge columns report the value at sample time.
    pub fn new(
        registry: &Registry,
        counters: &[&str],
        hist_sums: &[&str],
        gauges: &[&str],
    ) -> PerCpSeries {
        PerCpSeries {
            counters: counters
                .iter()
                .map(|n| {
                    let c = registry.counter(n);
                    let base = c.get();
                    (n.to_string(), c, base)
                })
                .collect(),
            hist_sums: hist_sums
                .iter()
                .map(|n| {
                    let h = registry.histogram(n, &[]);
                    let base = h.sum();
                    (n.to_string(), h, base)
                })
                .collect(),
            gauges: gauges
                .iter()
                .map(|n| (n.to_string(), registry.gauge(n)))
                .collect(),
            rows: Vec::new(),
        }
    }

    /// Column names, in row-value order, prefixed with `cp`.
    pub fn columns(&self) -> Vec<String> {
        let mut cols =
            Vec::with_capacity(1 + self.counters.len() + self.hist_sums.len() + self.gauges.len());
        cols.push("cp".to_string());
        cols.extend(self.counters.iter().map(|(n, _, _)| n.clone()));
        cols.extend(self.hist_sums.iter().map(|(n, _, _)| format!("{n}.sum")));
        cols.extend(self.gauges.iter().map(|(n, _)| n.clone()));
        cols
    }

    /// Record one row for the CP that just completed.
    pub fn sample(&mut self, cp: u64) {
        let mut values =
            Vec::with_capacity(self.counters.len() + self.hist_sums.len() + self.gauges.len());
        for (_, c, last) in &mut self.counters {
            let cur = c.get();
            values.push(cur.saturating_sub(*last) as f64);
            *last = cur;
        }
        for (_, h, last) in &mut self.hist_sums {
            let cur = h.sum();
            values.push(cur - *last);
            *last = cur;
        }
        for (_, g) in &self.gauges {
            values.push(g.get());
        }
        self.rows.push(CpRow { cp, values });
    }

    /// Sampled rows, oldest first.
    pub fn rows(&self) -> &[CpRow] {
        &self.rows
    }

    /// Render as `{"columns":[..],"rows":[[cp, ..], ..]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(self.rows.len() * 64 + 128);
        out.push_str("{\"columns\":[");
        for (i, col) in self.columns().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, col);
        }
        out.push_str("],\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            out.push_str(&row.cp.to_string());
            for v in &row.values {
                out.push(',');
                push_f64(&mut out, *v);
            }
            out.push(']');
        }
        out.push_str("]}");
        out
    }

    /// Render as CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.rows.len() * 48 + 128);
        out.push_str(&self.columns().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.cp.to_string());
            for v in &row.values {
                out.push(',');
                if v.is_finite() {
                    out.push_str(&v.to_string());
                } else {
                    out.push_str("null");
                }
            }
            out.push('\n');
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON parser (the serde shim is serialize-only) + trace validation
// ---------------------------------------------------------------------------

/// A minimal recursive-descent JSON parser, just enough for
/// `trace-report` and the CI trace smoke to re-read exported trace files
/// (the workspace's offline serde shim cannot parse).
pub mod json {
    /// A parsed JSON value. Object keys keep file order.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any JSON number, as `f64`.
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, in file order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// Member lookup on an object (first match), else `None`.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The number, if this is a number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }

        /// The string, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The elements, if this is an array.
        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(v) => Some(v),
                _ => None,
            }
        }
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    /// Parse one JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        fn peek(&mut self) -> Result<u8, String> {
            self.skip_ws();
            self.bytes
                .get(self.pos)
                .copied()
                .ok_or_else(|| "unexpected end of input".to_string())
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek()? == b {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected '{}' at byte {}", b as char, self.pos))
            }
        }

        fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
                self.pos += lit.len();
                Ok(v)
            } else {
                Err(format!("invalid literal at byte {}", self.pos))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek()? {
                b'{' => self.object(),
                b'[' => self.array(),
                b'"' => Ok(Value::Str(self.string()?)),
                b't' => self.literal("true", Value::Bool(true)),
                b'f' => self.literal("false", Value::Bool(false)),
                b'n' => self.literal("null", Value::Null),
                _ => self.number(),
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut members = Vec::new();
            if self.peek()? == b'}' {
                self.pos += 1;
                return Ok(Value::Obj(members));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.expect(b':')?;
                members.push((key, self.value()?));
                match self.peek()? {
                    b',' => self.pos += 1,
                    b'}' => {
                        self.pos += 1;
                        return Ok(Value::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            if self.peek()? == b']' {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(self.value()?);
                match self.peek()? {
                    b',' => self.pos += 1,
                    b']' => {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            if self.bytes.get(self.pos) != Some(&b'"') {
                return Err(format!("expected string at byte {}", self.pos));
            }
            self.pos += 1;
            let mut out = String::new();
            loop {
                let b = *self.bytes.get(self.pos).ok_or("unterminated string")?;
                self.pos += 1;
                match b {
                    b'"' => return Ok(out),
                    b'\\' => {
                        let esc = *self.bytes.get(self.pos).ok_or("unterminated escape")?;
                        self.pos += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'u' => {
                                let cp = self.hex4()?;
                                // Surrogate pairs: read the low half if present.
                                let c = if (0xD800..0xDC00).contains(&cp) {
                                    if self.bytes[self.pos..].starts_with(b"\\u") {
                                        self.pos += 2;
                                        let lo = self.hex4()?;
                                        let combined = 0x10000
                                            + ((cp - 0xD800) << 10)
                                            + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                        char::from_u32(combined)
                                    } else {
                                        None
                                    }
                                } else {
                                    char::from_u32(cp)
                                };
                                out.push(c.unwrap_or('\u{FFFD}'));
                            }
                            _ => return Err(format!("bad escape at byte {}", self.pos)),
                        }
                    }
                    _ => {
                        // Re-sync to char boundaries for multi-byte UTF-8.
                        let start = self.pos - 1;
                        let mut end = self.pos;
                        while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                            end += 1;
                        }
                        let chunk = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| "invalid UTF-8 in string".to_string())?;
                        out.push_str(chunk);
                        self.pos = end;
                    }
                }
            }
        }

        fn hex4(&mut self) -> Result<u32, String> {
            let chunk = self
                .bytes
                .get(self.pos..self.pos + 4)
                .ok_or("truncated \\u escape")?;
            self.pos += 4;
            let s = std::str::from_utf8(chunk).map_err(|_| "bad \\u escape".to_string())?;
            u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape".to_string())
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            let s = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| "bad number".to_string())?;
            s.parse::<f64>()
                .map(Value::Num)
                .map_err(|_| format!("bad number '{s}' at byte {start}"))
        }
    }
}

/// One event re-read from an exported Chrome trace file.
#[derive(Clone, Debug)]
pub struct ParsedEvent {
    /// Event name.
    pub name: String,
    /// Event category.
    pub cat: String,
    /// Phase: `"B"`, `"E"`, `"i"`, or `"M"`.
    pub ph: String,
    /// Timestamp in µs (0 for metadata).
    pub ts: f64,
    /// Track id.
    pub tid: u64,
    /// The CP sequence number from `args.cp`, when present.
    pub cp: Option<u64>,
    /// The raw `args` object.
    pub args: json::Value,
}

/// Parse an exported Chrome trace file into its event list.
pub fn parse_chrome_trace(text: &str) -> Result<Vec<ParsedEvent>, String> {
    let doc = json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .ok_or("missing traceEvents array")?;
    let mut out = Vec::with_capacity(events.len());
    for (i, ev) in events.iter().enumerate() {
        let name = ev
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: missing name"))?
            .to_string();
        let ph = ev
            .get("ph")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: missing ph"))?
            .to_string();
        let args = ev
            .get("args")
            .cloned()
            .unwrap_or(json::Value::Obj(Vec::new()));
        out.push(ParsedEvent {
            name,
            cat: ev
                .get("cat")
                .and_then(|v| v.as_str())
                .unwrap_or("")
                .to_string(),
            ph,
            ts: ev.get("ts").and_then(|v| v.as_f64()).unwrap_or(0.0),
            tid: ev.get("tid").and_then(|v| v.as_f64()).unwrap_or(0.0) as u64,
            cp: args.get("cp").and_then(|v| v.as_f64()).map(|v| v as u64),
            args,
        });
    }
    Ok(out)
}

/// Summary facts [`validate_chrome_trace`] proves about a trace file.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChromeTraceStats {
    /// Total events including metadata.
    pub events: usize,
    /// Matched begin/end span pairs.
    pub spans: usize,
    /// Instant events.
    pub instants: usize,
    /// Shard tracks named by thread-name metadata (`"shard N"`).
    pub shard_tracks: usize,
    /// Whether the CP-engine track metadata is present.
    pub engine_track: bool,
    /// Highest CP sequence number seen.
    pub max_cp: u64,
}

/// Validate a parsed trace: every `B` has a matching same-name `E` on its
/// track (in file order), CP sequence numbers never decrease within a
/// track, and — when `expect_shards` is given — the shard track count
/// matches exactly.
pub fn validate_chrome_trace(
    events: &[ParsedEvent],
    expect_shards: Option<usize>,
) -> Result<ChromeTraceStats, String> {
    let mut stats = ChromeTraceStats {
        events: events.len(),
        ..ChromeTraceStats::default()
    };
    let mut stacks: std::collections::BTreeMap<u64, Vec<&str>> = std::collections::BTreeMap::new();
    let mut last_cp: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        match ev.ph.as_str() {
            "M" => {
                if ev.name == "thread_name" {
                    let track = ev.args.get("name").and_then(|v| v.as_str()).unwrap_or("");
                    if track == "cp-engine" {
                        stats.engine_track = true;
                    } else if track.starts_with("shard ") {
                        stats.shard_tracks += 1;
                    }
                }
                continue;
            }
            "B" => stacks.entry(ev.tid).or_default().push(&ev.name),
            "E" => {
                let stack = stacks.entry(ev.tid).or_default();
                match stack.pop() {
                    Some(open) if open == ev.name => stats.spans += 1,
                    Some(open) => {
                        return Err(format!(
                            "event {i}: end '{}' does not match open span '{open}' on tid {}",
                            ev.name, ev.tid
                        ))
                    }
                    None => {
                        return Err(format!(
                            "event {i}: end '{}' with no open span on tid {}",
                            ev.name, ev.tid
                        ))
                    }
                }
            }
            "i" => stats.instants += 1,
            other => return Err(format!("event {i}: unexpected phase '{other}'")),
        }
        if let Some(cp) = ev.cp {
            let last = last_cp.entry(ev.tid).or_insert(cp);
            if cp < *last {
                return Err(format!(
                    "event {i}: cp {cp} after cp {last} on tid {} — not CP-ordered",
                    ev.tid
                ));
            }
            *last = cp;
            stats.max_cp = stats.max_cp.max(cp);
        }
    }
    for (tid, stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!("unclosed span '{open}' on tid {tid}"));
        }
    }
    if !stats.engine_track {
        return Err("missing cp-engine track metadata".to_string());
    }
    if let Some(expected) = expect_shards {
        if stats.shard_tracks != expected {
            return Err(format!(
                "expected {expected} shard tracks, found {}",
                stats.shard_tracks
            ));
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &'static str, dur_us: f64) -> TraceData {
        TraceData::Span {
            name,
            dur_us,
            model_us: 0.0,
        }
    }

    #[test]
    fn ring_records_in_claim_order_and_counts_drops_exactly() {
        let reg = Registry::new();
        let t = Tracer::new(4, &reg);
        for i in 0..6u64 {
            t.emit(i, None, TraceData::SweepFallback { picks: i });
        }
        assert_eq!(t.capacity(), 4);
        assert_eq!(t.recorded(), 4);
        assert_eq!(t.dropped(), 2);
        assert_eq!(reg.counter_value(DROPPED_EVENTS), Some(2));
        let events = t.events();
        assert_eq!(events.len(), 4);
        for (i, ev) in events.iter().enumerate() {
            assert_eq!(ev.cp, i as u64);
        }
    }

    #[test]
    fn concurrent_emission_below_capacity_loses_nothing() {
        const THREADS: usize = 4;
        const PER_THREAD: usize = 5_000;
        let reg = Registry::new();
        let t = Tracer::new(THREADS * PER_THREAD, &reg);
        let workers: Vec<_> = (0..THREADS)
            .map(|shard| {
                let t = t.clone();
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        t.emit(
                            i as u64,
                            Some(shard as u32),
                            TraceData::Lease {
                                aa: i as u32,
                                take: 1,
                                stolen: false,
                            },
                        );
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(t.dropped(), 0);
        let events = t.events();
        assert_eq!(events.len(), THREADS * PER_THREAD);
        // Every (shard, i) pair arrived exactly once.
        let mut seen = vec![0u32; THREADS * PER_THREAD];
        for ev in &events {
            let shard = ev.shard.expect("worker events carry a shard") as usize;
            seen[shard * PER_THREAD + ev.cp as usize] += 1;
        }
        assert!(seen.iter().all(|&n| n == 1));
    }

    #[test]
    fn concurrent_overflow_counts_dropped_exactly() {
        const THREADS: usize = 4;
        const PER_THREAD: usize = 2_000;
        const CAPACITY: usize = 1_000;
        let reg = Registry::new();
        let t = Tracer::new(CAPACITY, &reg);
        let workers: Vec<_> = (0..THREADS)
            .map(|shard| {
                let t = t.clone();
                std::thread::spawn(move || {
                    for _ in 0..PER_THREAD {
                        t.emit(0, Some(shard as u32), TraceData::SweepFallback { picks: 1 });
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(t.events().len(), CAPACITY);
        assert_eq!(t.dropped(), (THREADS * PER_THREAD - CAPACITY) as u64);
    }

    #[test]
    fn chrome_export_round_trips_and_validates() {
        let reg = Registry::new();
        let t = Tracer::new(64, &reg);
        // CP 0: an engine-track cp span containing two phases, one shard
        // drain with a lease, a quarantine instant.
        t.emit_at(0.0, 0, None, span("cp.total", 10.0));
        t.emit_at(0.0, 0, None, span("cp.plan_virtual", 4.0));
        t.emit_at(4.0, 0, None, span("cp.bind", 5.0));
        t.emit_at(1.0, 0, Some(0), span("shard.drain", 2.5));
        t.emit_at(
            1.5,
            0,
            Some(0),
            TraceData::Lease {
                aa: 7,
                take: 64,
                stolen: true,
            },
        );
        t.emit_at(9.0, 0, None, TraceData::Quarantine { units: 2 });
        // CP 1 on the engine track.
        t.emit_at(20.0, 1, None, span("cp.total", 3.0));
        t.emit_at(21.0, 1, None, TraceData::HealthChange { from: 0, to: 1 });

        let json_text = chrome_trace_json(&t.events(), 2);
        let parsed = parse_chrome_trace(&json_text).expect("trace parses");
        let stats = validate_chrome_trace(&parsed, Some(2)).expect("trace validates");
        assert_eq!(stats.spans, 5);
        assert_eq!(stats.instants, 3);
        assert_eq!(stats.shard_tracks, 2);
        assert!(stats.engine_track);
        assert_eq!(stats.max_cp, 1);
        assert!(validate_chrome_trace(&parsed, Some(3)).is_err());
    }

    #[test]
    fn overlapping_same_track_spans_are_clipped_not_broken() {
        let reg = Registry::new();
        let t = Tracer::new(8, &reg);
        // Two spans on shard 0 that overlap without nesting (two RAID
        // groups planned concurrently on one shard).
        t.emit_at(0.0, 0, Some(0), span("shard.drain", 10.0));
        t.emit_at(5.0, 0, Some(0), span("shard.drain", 10.0));
        let json_text = chrome_trace_json(&t.events(), 1);
        let parsed = parse_chrome_trace(&json_text).expect("trace parses");
        let stats = validate_chrome_trace(&parsed, Some(1)).expect("clipped trace validates");
        assert_eq!(stats.spans, 2);
    }

    #[test]
    fn export_orders_events_cp_major() {
        let reg = Registry::new();
        let t = Tracer::new(16, &reg);
        // Emit out of cp order (a late-arriving shard event from cp 0
        // after cp 1 started).
        t.emit_at(30.0, 1, None, span("cp.total", 5.0));
        t.emit_at(10.0, 0, None, span("cp.total", 5.0));
        t.emit_at(12.0, 0, Some(1), TraceData::SweepFallback { picks: 3 });
        let json_text = chrome_trace_json(&t.events(), 2);
        let parsed = parse_chrome_trace(&json_text).expect("trace parses");
        validate_chrome_trace(&parsed, None).expect("cp-major order validates");
    }

    #[test]
    fn per_cp_series_reports_deltas_and_gauge_values() {
        let reg = Registry::new();
        let c = reg.counter("ops");
        let h = reg.histogram("lat", &[10.0]);
        let g = reg.gauge("free");
        c.inc(5);
        let mut series = PerCpSeries::new(&reg, &["ops"], &["lat"], &["free"]);
        c.inc(3);
        h.observe(2.0);
        g.set(0.5);
        series.sample(0);
        c.inc(4);
        h.observe(1.0);
        g.set(0.25);
        series.sample(1);
        assert_eq!(series.columns(), vec!["cp", "ops", "lat.sum", "free"]);
        let rows = series.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].values, vec![3.0, 2.0, 0.5]);
        assert_eq!(rows[1].values, vec![4.0, 1.0, 0.25]);
        assert_eq!(
            series.to_json(),
            "{\"columns\":[\"cp\",\"ops\",\"lat.sum\",\"free\"],\
             \"rows\":[[0,3,2,0.5],[1,4,1,0.25]]}"
        );
        assert_eq!(
            series.to_csv(),
            "cp,ops,lat.sum,free\n0,3,2,0.5\n1,4,1,0.25\n"
        );
    }

    #[test]
    fn json_parser_handles_the_exporter_grammar() {
        let v =
            json::parse("{\"a\":[1,2.5,-3e2],\"s\":\"he\\\"llo\\u0041\",\"b\":true,\"n\":null}")
                .expect("parses");
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("s").unwrap().as_str(), Some("he\"lloA"));
        assert_eq!(v.get("b"), Some(&json::Value::Bool(true)));
        assert_eq!(v.get("n"), Some(&json::Value::Null));
        assert!(json::parse("{\"a\":}").is_err());
        assert!(json::parse("[1,2").is_err());
        assert!(json::parse("[] trailing").is_err());
    }
}
