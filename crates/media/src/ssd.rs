//! A page-mapped flash translation layer with greedy garbage collection.
//!
//! Write amplification is not a parameter of this model — it *emerges*
//! from the interaction of the host write pattern with erase-block
//! recycling, which is exactly the phenomenon §3.2.2 of the paper
//! exploits: draining whole (erase-block-aligned) allocation areas makes
//! pages that were written together become invalid together, so the
//! greedy collector finds nearly-empty victims and relocates little.

use serde::{Deserialize, Serialize};
use wafl_types::{WaflError, WaflResult};

const UNMAPPED: u32 = u32::MAX;

/// Cumulative FTL counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SsdStats {
    /// Pages written by the host.
    pub host_writes: u64,
    /// Pages programmed on flash (host writes + GC relocations).
    pub nand_writes: u64,
    /// Pages relocated by garbage collection.
    pub gc_relocations: u64,
    /// Erase operations performed.
    pub erases: u64,
    /// TRIM/unmap commands applied.
    pub trims: u64,
}

impl SsdStats {
    /// Write amplification: flash pages programmed per host page written.
    /// 1.0 is ideal (§3.2.2).
    pub fn write_amplification(&self) -> f64 {
        if self.host_writes == 0 {
            1.0
        } else {
            self.nand_writes as f64 / self.host_writes as f64
        }
    }
}

/// A page-mapped FTL over one SSD.
///
/// Logical page numbers (LPNs) are the device DBNs; 4 KiB pages. Physical
/// capacity exceeds the exported logical capacity by the over-provisioning
/// factor; the surplus plus a small erased-block reserve is what garbage
/// collection breathes with.
pub struct SsdFtl {
    erase_block_pages: u32,
    logical_pages: u32,
    /// LPN -> physical page, or `UNMAPPED`.
    l2p: Vec<u32>,
    /// Physical page -> LPN, or `UNMAPPED` (free or invalid).
    p2l: Vec<u32>,
    /// Valid-page count per erase block.
    valid: Vec<u32>,
    /// Fully erased blocks available for writing.
    free_ebs: Vec<u32>,
    /// Erase block currently being programmed, and its fill level.
    active: u32,
    write_ptr: u32,
    /// GC refills the free list up to this many blocks.
    gc_reserve: usize,
    in_gc: bool,
    stats: SsdStats,
    /// Page program time, µs.
    pub program_us: f64,
    /// Page read time (GC relocations read before re-programming), µs.
    pub read_us: f64,
    /// Erase-block erase time, µs.
    pub erase_us: f64,
    /// Internal parallelism: independent channels/planes programming
    /// concurrently. Batch costs divide by this — enterprise SSDs sustain
    /// far more than one page per program latency.
    pub channels: f64,
}

impl SsdFtl {
    /// Create an FTL exporting `logical_pages` pages with `op` fractional
    /// over-provisioning (e.g. `0.07` for 7 %) and `erase_block_pages`
    /// pages per erase block. Timings default to enterprise-NAND-class
    /// values (program 200 µs, read 60 µs, erase 2 ms).
    pub fn new(logical_pages: u32, erase_block_pages: u32, op: f64) -> WaflResult<SsdFtl> {
        if erase_block_pages == 0 || logical_pages == 0 {
            return Err(WaflError::InvalidConfig {
                reason: "SSD needs nonzero capacity and erase-block size".into(),
            });
        }
        if !(0.0..=1.0).contains(&op) {
            return Err(WaflError::InvalidConfig {
                reason: format!("over-provisioning {op} outside [0, 1]"),
            });
        }
        let gc_reserve = 4usize;
        let logical_ebs = (logical_pages as u64).div_ceil(erase_block_pages as u64);
        let physical_ebs =
            ((logical_ebs as f64) * (1.0 + op)).ceil() as u64 + gc_reserve as u64 + 1; // +1 for the active block
        let physical_pages = physical_ebs * erase_block_pages as u64;
        if physical_pages > UNMAPPED as u64 {
            return Err(WaflError::InvalidConfig {
                reason: "SSD too large for the u32 page index space".into(),
            });
        }
        let mut free_ebs: Vec<u32> = (0..physical_ebs as u32).rev().collect();
        let active = free_ebs.pop().expect("at least one erase block");
        Ok(SsdFtl {
            erase_block_pages,
            logical_pages,
            l2p: vec![UNMAPPED; logical_pages as usize],
            p2l: vec![UNMAPPED; physical_pages as usize],
            valid: vec![0; physical_ebs as usize],
            free_ebs,
            active,
            write_ptr: 0,
            gc_reserve,
            in_gc: false,
            stats: SsdStats::default(),
            program_us: 200.0,
            read_us: 60.0,
            erase_us: 2000.0,
            channels: 8.0,
        })
    }

    /// Exported capacity in pages.
    pub fn logical_pages(&self) -> u32 {
        self.logical_pages
    }

    /// Cumulative counters.
    pub fn stats(&self) -> SsdStats {
        self.stats
    }

    /// Current write amplification.
    pub fn write_amplification(&self) -> f64 {
        self.stats.write_amplification()
    }

    /// Reset counters (e.g. after aging, before measurement) without
    /// touching the mapping state.
    pub fn reset_stats(&mut self) {
        self.stats = SsdStats::default();
    }

    fn invalidate(&mut self, lpn: u32) {
        let old = self.l2p[lpn as usize];
        if old != UNMAPPED {
            self.p2l[old as usize] = UNMAPPED;
            self.valid[(old / self.erase_block_pages) as usize] -= 1;
            self.l2p[lpn as usize] = UNMAPPED;
        }
    }

    /// Claim the next physical page of the active block, rolling to a new
    /// erase block (and triggering GC) as needed.
    fn alloc_page(&mut self) -> u32 {
        if self.write_ptr == self.erase_block_pages {
            self.active = self
                .free_ebs
                .pop()
                .expect("FTL invariant: free list never empties (OP + reserve)");
            self.write_ptr = 0;
            if !self.in_gc && self.free_ebs.len() < self.gc_reserve {
                self.run_gc();
            }
        }
        let page = self.active * self.erase_block_pages + self.write_ptr;
        self.write_ptr += 1;
        page
    }

    /// Greedy collection: always the victim with the fewest valid pages,
    /// mirroring the "FTL must first relocate all active data in the erase
    /// block elsewhere" description of §3.2.2.
    fn run_gc(&mut self) {
        self.in_gc = true;
        while self.free_ebs.len() < self.gc_reserve {
            let victim = self
                .valid
                .iter()
                .enumerate()
                .filter(|&(eb, _)| {
                    eb as u32 != self.active && !self.free_ebs.contains(&(eb as u32))
                })
                .min_by_key(|&(_, &v)| v)
                .map(|(eb, _)| eb as u32)
                .expect("non-free erase block exists");
            let base = victim * self.erase_block_pages;
            for p in base..base + self.erase_block_pages {
                let lpn = self.p2l[p as usize];
                if lpn != UNMAPPED {
                    // Relocate the still-valid page.
                    self.p2l[p as usize] = UNMAPPED;
                    self.valid[victim as usize] -= 1;
                    let dst = self.alloc_page();
                    self.l2p[lpn as usize] = dst;
                    self.p2l[dst as usize] = lpn;
                    self.valid[(dst / self.erase_block_pages) as usize] += 1;
                    self.stats.nand_writes += 1;
                    self.stats.gc_relocations += 1;
                }
            }
            debug_assert_eq!(self.valid[victim as usize], 0);
            self.stats.erases += 1;
            self.free_ebs.push(victim);
        }
        self.in_gc = false;
    }

    /// Write one logical page. Returns nothing; use [`SsdFtl::write_batch`]
    /// for costed writes.
    pub fn host_write(&mut self, lpn: u32) -> WaflResult<()> {
        if lpn >= self.logical_pages {
            return Err(WaflError::VbnOutOfRange {
                vbn: wafl_types::Vbn(lpn as u64),
                space_len: self.logical_pages as u64,
            });
        }
        self.invalidate(lpn);
        let dst = self.alloc_page();
        self.l2p[lpn as usize] = dst;
        self.p2l[dst as usize] = lpn;
        self.valid[(dst / self.erase_block_pages) as usize] += 1;
        self.stats.host_writes += 1;
        self.stats.nand_writes += 1;
        Ok(())
    }

    /// Write a batch of logical pages and return the cost in microseconds:
    /// programs for host pages and relocations, reads for relocations, and
    /// erase time for blocks recycled while absorbing this batch.
    pub fn write_batch(&mut self, lpns: impl IntoIterator<Item = u32>) -> WaflResult<f64> {
        let before = self.stats;
        for lpn in lpns {
            self.host_write(lpn)?;
        }
        let d_nand = self.stats.nand_writes - before.nand_writes;
        let d_reloc = self.stats.gc_relocations - before.gc_relocations;
        let d_erase = self.stats.erases - before.erases;
        Ok((d_nand as f64 * self.program_us
            + d_reloc as f64 * self.read_us
            + d_erase as f64 * self.erase_us)
            / self.channels.max(1.0))
    }

    /// TRIM a logical page: the FS tells the FTL the block no longer holds
    /// live data, so GC need not relocate it. WAFL's delayed frees can be
    /// forwarded here (extension beyond the paper's experiments).
    pub fn trim(&mut self, lpn: u32) -> WaflResult<()> {
        if lpn >= self.logical_pages {
            return Err(WaflError::VbnOutOfRange {
                vbn: wafl_types::Vbn(lpn as u64),
                space_len: self.logical_pages as u64,
            });
        }
        self.invalidate(lpn);
        self.stats.trims += 1;
        Ok(())
    }

    /// Read cost for `pages` random page reads, µs.
    pub fn random_read_cost_us(&self, pages: u64) -> f64 {
        pages as f64 * self.read_us
    }

    /// Total valid (live) pages — equals the number of distinct LPNs ever
    /// written and not trimmed.
    pub fn live_pages(&self) -> u64 {
        self.valid.iter().map(|&v| v as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn construction_validates() {
        assert!(SsdFtl::new(0, 64, 0.1).is_err());
        assert!(SsdFtl::new(1024, 0, 0.1).is_err());
        assert!(SsdFtl::new(1024, 64, -0.1).is_err());
        assert!(SsdFtl::new(1024, 64, 1.5).is_err());
        assert!(SsdFtl::new(1024, 64, 0.07).is_ok());
    }

    #[test]
    fn first_fill_has_unit_write_amplification() {
        let mut ssd = SsdFtl::new(64 * 100, 64, 0.1).unwrap();
        for lpn in 0..64 * 100 {
            ssd.host_write(lpn).unwrap();
        }
        assert_eq!(ssd.write_amplification(), 1.0);
        assert_eq!(ssd.live_pages(), 64 * 100);
    }

    #[test]
    fn sequential_overwrite_stays_near_unit_wa() {
        // Overwriting the whole device in LPN order keeps invalidations
        // clustered: GC victims are empty, WA stays ~1.
        let n = 64 * 200;
        let mut ssd = SsdFtl::new(n, 64, 0.1).unwrap();
        for round in 0..4 {
            for lpn in 0..n {
                ssd.host_write(lpn).unwrap();
            }
            let wa = ssd.write_amplification();
            assert!(wa < 1.1, "round {round}: WA {wa} should be ~1");
        }
    }

    #[test]
    fn random_overwrite_amplifies_more_than_sequential() {
        let n = 64 * 200;
        let mut seq = SsdFtl::new(n, 64, 0.1).unwrap();
        let mut rnd = SsdFtl::new(n, 64, 0.1).unwrap();
        // Pre-fill both.
        for lpn in 0..n {
            seq.host_write(lpn).unwrap();
            rnd.host_write(lpn).unwrap();
        }
        seq.reset_stats();
        rnd.reset_stats();
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..(4 * n as u64) {
            seq.host_write((i % n as u64) as u32).unwrap();
            rnd.host_write(rng.random_range(0..n)).unwrap();
        }
        let (wa_seq, wa_rnd) = (seq.write_amplification(), rnd.write_amplification());
        assert!(wa_seq < 1.1, "sequential WA {wa_seq}");
        assert!(
            wa_rnd > wa_seq + 0.3,
            "random WA {wa_rnd} must exceed sequential {wa_seq}"
        );
    }

    #[test]
    fn lower_op_worsens_random_wa() {
        // Classic FTL behaviour the paper leans on when it says AA sizing
        // "enabled NetApp to ship SSDs with significantly lower OP".
        let n = 64 * 200;
        let mut tight = SsdFtl::new(n, 64, 0.05).unwrap();
        let mut roomy = SsdFtl::new(n, 64, 0.30).unwrap();
        for lpn in 0..n {
            tight.host_write(lpn).unwrap();
            roomy.host_write(lpn).unwrap();
        }
        tight.reset_stats();
        roomy.reset_stats();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..(4 * n as u64) {
            let l = rng.random_range(0..n);
            tight.host_write(l).unwrap();
            roomy.host_write(l).unwrap();
        }
        assert!(
            tight.write_amplification() > roomy.write_amplification(),
            "tight {} <= roomy {}",
            tight.write_amplification(),
            roomy.write_amplification()
        );
    }

    #[test]
    fn trim_reduces_wa_under_random_load() {
        let n = 64 * 200;
        let mut no_trim = SsdFtl::new(n, 64, 0.1).unwrap();
        let mut with_trim = SsdFtl::new(n, 64, 0.1).unwrap();
        for lpn in 0..n {
            no_trim.host_write(lpn).unwrap();
            with_trim.host_write(lpn).unwrap();
        }
        // Trim half the space on one device.
        for lpn in (0..n).step_by(2) {
            with_trim.trim(lpn).unwrap();
        }
        no_trim.reset_stats();
        with_trim.reset_stats();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..(2 * n as u64) {
            let l = rng.random_range(0..n);
            no_trim.host_write(l).unwrap();
            with_trim.host_write(l).unwrap();
        }
        assert!(with_trim.write_amplification() < no_trim.write_amplification());
    }

    #[test]
    fn write_batch_cost_includes_gc() {
        let n = 64 * 50;
        let mut ssd = SsdFtl::new(n, 64, 0.07).unwrap();
        let fill: f64 = ssd.write_batch(0..n).unwrap();
        assert!(fill >= n as f64 * ssd.program_us / ssd.channels);
        // Random churn must cost more per page than the clean fill did.
        let mut rng = StdRng::seed_from_u64(4);
        let churn: Vec<u32> = (0..2 * n).map(|_| rng.random_range(0..n)).collect();
        let churn_cost = ssd.write_batch(churn.iter().copied()).unwrap();
        let per_page_fill = fill / n as f64;
        let per_page_churn = churn_cost / (2 * n) as f64;
        assert!(per_page_churn > per_page_fill);
    }

    #[test]
    fn out_of_range_lpn_rejected() {
        let mut ssd = SsdFtl::new(128, 64, 0.1).unwrap();
        assert!(ssd.host_write(128).is_err());
        assert!(ssd.trim(usize::MAX as u32).is_err());
    }

    #[test]
    fn mapping_stays_consistent_under_churn() {
        // Invariant check: live pages == distinct written LPNs, and every
        // l2p entry round-trips through p2l.
        let n = 64 * 80;
        let mut ssd = SsdFtl::new(n, 64, 0.12).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut written = std::collections::HashSet::new();
        for _ in 0..(6 * n as u64) {
            let l = rng.random_range(0..n);
            ssd.host_write(l).unwrap();
            written.insert(l);
        }
        assert_eq!(ssd.live_pages(), written.len() as u64);
        for (lpn, &phys) in ssd.l2p.iter().enumerate() {
            if phys != UNMAPPED {
                assert_eq!(ssd.p2l[phys as usize], lpn as u32);
            }
        }
    }
}
