//! Object-store backend model.

use serde::{Deserialize, Serialize};

/// An on-premises or cloud object store (the Fabric Pool capacity tier).
///
/// Provides native redundancy, so ONTAP uses no RAID layer and AAs are
/// plain consecutive-VBN ranges (§3.1). The performance structure relevant
/// to free-space search is only that PUTs aggregate many blocks: writing
/// colocated VBNs lets WAFL pack fewer, larger objects.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ObjectStoreModel {
    /// Blocks packed per object PUT.
    pub blocks_per_object: u64,
    /// Fixed request overhead per PUT, µs.
    pub put_overhead_us: f64,
    /// Per-block streaming cost, µs.
    pub per_block_us: f64,
    /// Fixed request overhead per GET, µs.
    pub get_overhead_us: f64,
}

impl ObjectStoreModel {
    /// An S3-class profile: 4 MiB objects (1024 blocks), ~20 ms per
    /// request, ~2 µs/block streaming.
    pub fn s3_class() -> ObjectStoreModel {
        ObjectStoreModel {
            blocks_per_object: 1024,
            put_overhead_us: 20_000.0,
            per_block_us: 2.0,
            get_overhead_us: 15_000.0,
        }
    }

    /// Cost of writing `blocks` blocks spread across `distinct_ranges`
    /// colocated runs. Each run is packed into `ceil(len/blocks_per_object)`
    /// objects; fragmentation increases the object count.
    pub fn write_cost_us(&self, runs: &[(u64, u64)]) -> f64 {
        let mut objects = 0u64;
        let mut blocks = 0u64;
        for &(_, len) in runs {
            objects += len.div_ceil(self.blocks_per_object).max(1);
            blocks += len;
        }
        objects as f64 * self.put_overhead_us + blocks as f64 * self.per_block_us
    }

    /// Cost of `n` random single-block reads (each a GET), µs.
    pub fn random_read_cost_us(&self, n: u64) -> f64 {
        n as f64 * (self.get_overhead_us + self.per_block_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colocated_runs_need_fewer_puts() {
        let o = ObjectStoreModel::s3_class();
        // 4096 blocks in one run vs 4096 runs of one block.
        let packed = o.write_cost_us(&[(0, 4096)]);
        let scattered: Vec<(u64, u64)> = (0..4096).map(|i| (i * 10, 1)).collect();
        let sprayed = o.write_cost_us(&scattered);
        assert!(sprayed > 100.0 * packed / 4.0_f64.max(1.0));
        assert!(packed < sprayed);
    }

    #[test]
    fn empty_write_is_free() {
        let o = ObjectStoreModel::s3_class();
        assert_eq!(o.write_cost_us(&[]), 0.0);
    }

    #[test]
    fn object_rounding() {
        let o = ObjectStoreModel::s3_class();
        // 1025 blocks -> 2 objects.
        let c = o.write_cost_us(&[(0, 1025)]);
        assert!((c - (2.0 * o.put_overhead_us + 1025.0 * o.per_block_us)).abs() < 1e-9);
    }
}
