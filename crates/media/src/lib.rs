//! Storage-media cost models: HDD, SSD (with a page-mapped FTL), drive-
//! managed SMR, and object store.
//!
//! The paper's experiments run on real NetApp hardware; none is available
//! here, so each media type is modelled by the mechanism the paper's
//! argument depends on (DESIGN.md §4 documents each substitution):
//!
//! * [`HddModel`] — positioning + transfer. Long write chains (§2.4)
//!   amortise positioning, fragmented writes pay one seek per chain.
//! * [`SsdFtl`] — a page-mapped flash translation layer with erase blocks,
//!   greedy garbage collection, and configurable over-provisioning. Write
//!   amplification (§3.2.2) *emerges* from the write pattern: writes that
//!   cluster invalidations into whole erase blocks let GC pick empty
//!   victims; scattered writes force GC to relocate live pages.
//! * [`SmrModel`] — shingle zones with per-zone write pointers. Writes at
//!   the pointer are cheap and sequential; writes behind it (mid-zone)
//!   need drive intervention (§3.2.3), modelled as out-of-place remapping
//!   with cleaning debt.
//! * [`ObjectStoreModel`] — natively redundant storage with flat per-PUT
//!   cost; exists so RAID-agnostic physical ranges have a priced backend.
//!
//! All costs are in **microseconds** (`f64`); callers aggregate them into
//! per-CP service times.

#![warn(missing_docs)]

mod hdd;
mod object;
mod profile;
mod smr;
mod ssd;

pub use hdd::HddModel;
pub use object::ObjectStoreModel;
pub use profile::MediaProfile;
pub use smr::{SmrModel, SmrStats};
pub use ssd::{SsdFtl, SsdStats};
