//! Bundled media parameters used by the file-system simulator and the
//! experiment harness.

use serde::{Deserialize, Serialize};
use wafl_types::MediaType;

/// Everything the allocator and cost model need to know about a media
/// type, in one place. The geometry fields feed the §3.2 sizing policies;
/// the timing fields feed the cost models.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MediaProfile {
    /// Media family.
    pub media: MediaType,
    /// Erase-block size in 4 KiB blocks (SSD only; 0 otherwise).
    pub erase_block_blocks: u64,
    /// Shingle-zone size in 4 KiB blocks (SMR only; 0 otherwise).
    pub zone_blocks: u64,
    /// SSD over-provisioning fraction (SSD only).
    pub over_provisioning: f64,
}

impl MediaProfile {
    /// Enterprise SAS/SATA HDD.
    pub fn hdd() -> MediaProfile {
        MediaProfile {
            media: MediaType::Hdd,
            erase_block_blocks: 0,
            zone_blocks: 0,
            over_provisioning: 0.0,
        }
    }

    /// Enterprise SSD: 2 MiB erase blocks (512 × 4 KiB), 7 % OP — the
    /// "significantly lower OP" the paper says AA sizing enabled.
    pub fn ssd() -> MediaProfile {
        MediaProfile {
            media: MediaType::Ssd,
            erase_block_blocks: 512,
            zone_blocks: 0,
            over_provisioning: 0.07,
        }
    }

    /// Enterprise SSD with the historical 30 % OP ("the FTL in SSDs
    /// productized for such workloads can hide up to 30% of the drive
    /// capacity", §3.2.2) for comparison runs.
    pub fn ssd_high_op() -> MediaProfile {
        MediaProfile {
            over_provisioning: 0.30,
            ..MediaProfile::ssd()
        }
    }

    /// Drive-managed SMR: 256 MiB shingle zones (65 536 × 4 KiB). Scaled-
    /// down experiments may override `zone_blocks`.
    pub fn smr() -> MediaProfile {
        MediaProfile {
            media: MediaType::Smr,
            erase_block_blocks: 0,
            zone_blocks: 65_536,
            over_provisioning: 0.0,
        }
    }

    /// Object store (Fabric Pool capacity tier).
    pub fn object_store() -> MediaProfile {
        MediaProfile {
            media: MediaType::ObjectStore,
            erase_block_blocks: 0,
            zone_blocks: 0,
            over_provisioning: 0.0,
        }
    }

    /// The device-level unit the AA sizing policy should respect: erase
    /// block for SSD, shingle zone for SMR, nothing otherwise.
    pub fn device_unit_blocks(&self) -> u64 {
        match self.media {
            MediaType::Ssd => self.erase_block_blocks,
            MediaType::Smr => self.zone_blocks,
            MediaType::Hdd | MediaType::ObjectStore => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_selection_follows_media() {
        assert_eq!(MediaProfile::hdd().device_unit_blocks(), 0);
        assert_eq!(MediaProfile::ssd().device_unit_blocks(), 512);
        assert_eq!(MediaProfile::smr().device_unit_blocks(), 65_536);
        assert_eq!(MediaProfile::object_store().device_unit_blocks(), 0);
    }

    #[test]
    fn op_presets_ordered() {
        assert!(
            MediaProfile::ssd().over_provisioning < MediaProfile::ssd_high_op().over_provisioning
        );
    }
}
