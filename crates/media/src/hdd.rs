//! Conventional hard-drive cost model.

use serde::{Deserialize, Serialize};

/// A conventional (non-shingled) hard drive.
///
/// The only structure the free-space experiments need is the §2.4 effect:
/// a write *chain* (maximal run of consecutive DBNs) costs one positioning
/// delay regardless of length, plus per-block transfer time. Fragmented
/// free space shortens chains, multiplying positioning cost.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HddModel {
    /// Average positioning (seek + rotational) delay per discontiguous
    /// access, microseconds.
    pub position_us: f64,
    /// Transfer time per 4 KiB block, microseconds.
    pub transfer_us: f64,
}

impl HddModel {
    /// A 10k-RPM SAS-class profile: ~4 ms positioning, ~200 MB/s media
    /// rate (≈ 20 µs per 4 KiB block).
    pub fn sas_10k() -> HddModel {
        HddModel {
            position_us: 4000.0,
            transfer_us: 20.0,
        }
    }

    /// Cost of writing `chains` discontiguous runs totalling `blocks`
    /// blocks, microseconds.
    pub fn write_cost_us(&self, chains: u64, blocks: u64) -> f64 {
        chains as f64 * self.position_us + blocks as f64 * self.transfer_us
    }

    /// Cost of `blocks` random single-block reads, microseconds.
    pub fn random_read_cost_us(&self, blocks: u64) -> f64 {
        blocks as f64 * (self.position_us + self.transfer_us)
    }

    /// Effective write throughput in blocks per second for a workload with
    /// mean chain length `chain_len`.
    pub fn throughput_blocks_per_s(&self, chain_len: f64) -> f64 {
        if chain_len <= 0.0 {
            return 0.0;
        }
        let us_per_block = self.position_us / chain_len + self.transfer_us;
        1e6 / us_per_block
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chains_dominate_fragmented_cost() {
        let h = HddModel::sas_10k();
        // 1000 blocks in 1 chain vs 1000 chains of 1 block.
        let contiguous = h.write_cost_us(1, 1000);
        let fragmented = h.write_cost_us(1000, 1000);
        assert!(fragmented > 50.0 * contiguous);
    }

    #[test]
    fn throughput_improves_with_chain_length() {
        let h = HddModel::sas_10k();
        let t1 = h.throughput_blocks_per_s(1.0);
        let t64 = h.throughput_blocks_per_s(64.0);
        assert!(t64 > 10.0 * t1);
        assert_eq!(h.throughput_blocks_per_s(0.0), 0.0);
        // Infinite-chain asymptote is the media rate.
        let cap = h.throughput_blocks_per_s(1e12);
        assert!((cap - 1e6 / h.transfer_us).abs() / cap < 1e-6);
    }

    #[test]
    fn random_reads_pay_full_positioning() {
        let h = HddModel::sas_10k();
        assert_eq!(
            h.random_read_cost_us(10),
            10.0 * (h.position_us + h.transfer_us)
        );
    }
}
