//! Drive-managed shingled-magnetic-recording model.

use serde::{Deserialize, Serialize};
use wafl_types::{WaflError, WaflResult};

/// Cumulative SMR counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SmrStats {
    /// Blocks written sequentially at a zone's write pointer.
    pub sequential_blocks: u64,
    /// Write chains that appended at a write pointer (cheap path).
    pub sequential_chains: u64,
    /// Drive interventions: writes landing *behind* a zone's write pointer,
    /// forcing the drive to update out of place (§3.2.3).
    pub interventions: u64,
    /// Blocks the drive had to rewrite/relocate to service interventions —
    /// its internal cleaning debt.
    pub relocated_blocks: u64,
    /// Chains that skipped ahead of the write pointer (allowed; abandons
    /// the gap until the zone is reset).
    pub forward_jumps: u64,
}

/// One drive-managed SMR disk: shingle zones with per-zone write pointers.
///
/// Writes appended at a zone's write pointer stream at media rate. Writes
/// behind the pointer would overwrite shingled neighbours, so the drive
/// intervenes: it services the write out of place and takes on cleaning
/// debt proportional to the data it must eventually rewrite. The model
/// charges that debt immediately (pessimistic but monotone, which is all
/// the Figure 9 comparison needs).
pub struct SmrModel {
    zone_blocks: u64,
    zones: u64,
    /// Next sequential offset expected per zone.
    write_pointer: Vec<u64>,
    stats: SmrStats,
    /// Positioning delay per discontiguous chain, µs.
    pub position_us: f64,
    /// Per-block transfer time, µs.
    pub transfer_us: f64,
    /// Per-block cost of out-of-place remapping (read + rewrite + map
    /// update), µs.
    pub intervention_us_per_block: f64,
}

impl SmrModel {
    /// A drive of `zones` shingle zones of `zone_blocks` blocks each.
    pub fn new(zones: u64, zone_blocks: u64) -> WaflResult<SmrModel> {
        if zones == 0 || zone_blocks == 0 {
            return Err(WaflError::InvalidConfig {
                reason: "SMR drive needs nonzero zones and zone size".into(),
            });
        }
        Ok(SmrModel {
            zone_blocks,
            zones,
            write_pointer: vec![0; zones as usize],
            stats: SmrStats::default(),
            position_us: 4000.0,
            transfer_us: 20.0,
            intervention_us_per_block: 80.0,
        })
    }

    /// Blocks per shingle zone.
    pub fn zone_blocks(&self) -> u64 {
        self.zone_blocks
    }

    /// Device capacity in blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.zones * self.zone_blocks
    }

    /// Cumulative counters.
    pub fn stats(&self) -> SmrStats {
        self.stats
    }

    /// Reset counters without touching zone state.
    pub fn reset_stats(&mut self) {
        self.stats = SmrStats::default();
    }

    /// Reset a zone's write pointer (models the FS reclaiming the zone —
    /// e.g. after segment cleaning empties the covering AA).
    pub fn reset_zone(&mut self, zone: u64) -> WaflResult<()> {
        if zone >= self.zones {
            return Err(WaflError::InvalidConfig {
                reason: format!("zone {zone} out of {}", self.zones),
            });
        }
        self.write_pointer[zone as usize] = 0;
        Ok(())
    }

    /// Write one contiguous chain of `len` blocks starting at `dbn`.
    /// Returns the cost in µs. Chains must not cross zone boundaries to
    /// keep accounting exact; the caller splits (the write allocator's
    /// chains come from AA drains, which §3.2.3's sizing keeps inside
    /// zones — misaligned configurations split here and pay for it).
    pub fn write_chain(&mut self, dbn: u64, len: u64) -> WaflResult<f64> {
        if len == 0 {
            return Ok(0.0);
        }
        let end = dbn + len;
        if end > self.capacity_blocks() {
            return Err(WaflError::VbnOutOfRange {
                vbn: wafl_types::Vbn(dbn),
                space_len: self.capacity_blocks(),
            });
        }
        let zone = dbn / self.zone_blocks;
        let last_zone = (end - 1) / self.zone_blocks;
        if zone != last_zone {
            // Split at the zone boundary and recurse (at most a few levels:
            // chains are AA-column sized).
            let split = (zone + 1) * self.zone_blocks;
            let first = self.write_chain(dbn, split - dbn)?;
            let rest = self.write_chain(split, end - split)?;
            return Ok(first + rest);
        }
        let off = dbn % self.zone_blocks;
        let wp = &mut self.write_pointer[zone as usize];
        let mut cost = self.position_us + len as f64 * self.transfer_us;
        if off == *wp {
            // Clean append.
            *wp += len;
            self.stats.sequential_blocks += len;
            self.stats.sequential_chains += 1;
        } else if off > *wp {
            // Skipping ahead is safe (nothing shingled beyond the pointer
            // yet) but abandons the gap.
            *wp = off + len;
            self.stats.forward_jumps += 1;
            self.stats.sequential_blocks += len;
        } else {
            // Rewrite behind the pointer: drive intervention. The drive
            // services it out of place and must eventually rewrite the
            // overlapped shingled data; charge the chain itself at the
            // intervention rate.
            self.stats.interventions += 1;
            self.stats.relocated_blocks += len;
            cost += len as f64 * self.intervention_us_per_block;
            // Write pointer unchanged: the zone's sequential frontier is
            // still where it was.
        }
        Ok(cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(SmrModel::new(0, 100).is_err());
        assert!(SmrModel::new(10, 0).is_err());
        assert!(SmrModel::new(10, 100).is_ok());
    }

    #[test]
    fn sequential_fill_never_intervenes() {
        let mut smr = SmrModel::new(4, 1000).unwrap();
        let mut dbn = 0;
        while dbn < smr.capacity_blocks() {
            smr.write_chain(dbn, 250).unwrap();
            dbn += 250;
        }
        let s = smr.stats();
        assert_eq!(s.interventions, 0);
        assert_eq!(s.sequential_blocks, 4000);
    }

    #[test]
    fn rewrite_behind_pointer_is_an_intervention() {
        let mut smr = SmrModel::new(2, 1000).unwrap();
        smr.write_chain(0, 500).unwrap();
        let clean = smr.write_chain(500, 100).unwrap();
        let dirty = smr.write_chain(100, 100).unwrap();
        assert!(dirty > clean);
        assert_eq!(smr.stats().interventions, 1);
        assert_eq!(smr.stats().relocated_blocks, 100);
    }

    #[test]
    fn forward_jump_is_cheap_but_tracked() {
        let mut smr = SmrModel::new(2, 1000).unwrap();
        smr.write_chain(0, 10).unwrap();
        smr.write_chain(500, 10).unwrap(); // jump over 10..500
        assert_eq!(smr.stats().forward_jumps, 1);
        assert_eq!(smr.stats().interventions, 0);
        // The abandoned gap is now behind the pointer.
        smr.write_chain(20, 5).unwrap();
        assert_eq!(smr.stats().interventions, 1);
    }

    #[test]
    fn chains_split_across_zones() {
        let mut smr = SmrModel::new(3, 100).unwrap();
        // 250-block chain from 0 crosses two boundaries.
        smr.write_chain(0, 250).unwrap();
        let s = smr.stats();
        assert_eq!(s.sequential_blocks, 250);
        assert_eq!(s.sequential_chains, 3);
        assert_eq!(s.interventions, 0);
    }

    #[test]
    fn zone_reset_allows_clean_rewrite() {
        let mut smr = SmrModel::new(2, 100).unwrap();
        smr.write_chain(0, 100).unwrap();
        smr.reset_zone(0).unwrap();
        smr.write_chain(0, 100).unwrap();
        assert_eq!(smr.stats().interventions, 0);
        assert!(smr.reset_zone(2).is_err());
    }

    #[test]
    fn capacity_bounds_enforced() {
        let mut smr = SmrModel::new(2, 100).unwrap();
        assert!(smr.write_chain(150, 100).is_err());
        assert!(smr.write_chain(0, 0).unwrap() == 0.0);
    }
}
