//! The RAID-aware AA cache: an indexed max-heap over all AAs of a RAID
//! group (§3.3.1).

use crate::batch::ScoreDeltaBatch;
use wafl_types::{AaId, AaScore, WaflError, WaflResult};

const ABSENT: usize = usize::MAX;

/// Deterministic id scramble for equal-score tie-breaking.
#[inline]
fn scramble(id: u32) -> u32 {
    // Finalizer from MurmurHash3; bijective on u32.
    let mut x = id.wrapping_add(0x9E37_79B9);
    x ^= x >> 16;
    x = x.wrapping_mul(0x85EB_CA6B);
    x ^= x >> 13;
    x = x.wrapping_mul(0xC2B2_AE35);
    x ^ (x >> 16)
}

/// Cumulative maintenance counters for one [`RaidAwareCache`].
///
/// Volatile observability state: never persisted, and reset by
/// [`RaidAwareCache::take_stats`] so callers can scrape deltas into an
/// external metrics registry at CP boundaries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HeapCacheStats {
    /// CP-boundary rebalances ([`RaidAwareCache::apply_batch`] calls).
    pub rebalances: u64,
    /// Per-AA score updates applied across all rebalances.
    pub rebalance_updates: u64,
    /// Element swaps performed while restoring heap order.
    pub sift_swaps: u64,
}

impl HeapCacheStats {
    /// Accumulate another instance's counters into this one.
    pub fn merge(&mut self, other: HeapCacheStats) {
        self.rebalances += other.rebalances;
        self.rebalance_updates += other.rebalance_updates;
        self.sift_swaps += other.sift_swaps;
    }
}

/// An in-memory max-heap of all allocation areas of one RAID group,
/// ordered by score (§3.3.1).
///
/// * Memory grows linearly with per-device capacity and is independent of
///   the device count — the paper's §3.3.1 example is ~1 MiB per 16 TiB
///   device; [`RaidAwareCache::memory_bytes`] reports the equivalent here.
/// * Scores change only through [`RaidAwareCache::apply_batch`], the CP-
///   boundary rebalance ("the max-heap is rebalanced at the end of each CP
///   after updating the scores").
/// * After a crash the cache can be *seeded* from a TopAA metafile with
///   only the 512 best AAs ([`RaidAwareCache::seeded`]) and later completed
///   by a background bitmap walk ([`RaidAwareCache::absorb_rebuild`]).
///
/// The heap is an explicit array-backed binary heap with a position index
/// per AA, so score updates are `O(log n)` and peeking the best AA is
/// `O(1)` — the operations the write allocator performs every CP.
///
/// ```
/// use wafl_core::{RaidAwareCache, ScoreDeltaBatch};
/// use wafl_types::{AaId, AaScore};
///
/// let mut cache = RaidAwareCache::new_full(
///     vec![AaScore(120), AaScore(4000), AaScore(77)],
///     vec![4096; 3], // each AA holds 4096 blocks
/// ).unwrap();
/// assert_eq!(cache.best(), Some((AaId(1), AaScore(4000))));
///
/// // One CP's batched deltas, applied at the boundary (§3.3.1).
/// let mut batch = ScoreDeltaBatch::new();
/// batch.record_allocated(AaId(1), 4000); // drained
/// batch.record_freed(AaId(2), 900);      // overwrites freed blocks
/// cache.apply_batch(&mut batch);
/// assert_eq!(cache.best(), Some((AaId(2), AaScore(977))));
/// ```
pub struct RaidAwareCache {
    /// Current score per AA (`aa_count` entries). Meaningful only while
    /// the AA is present in the heap; seeded caches leave absent AAs at 0.
    scores: Vec<AaScore>,
    /// Maximum score (block count) per AA; the trailing AA may be short.
    max_scores: Vec<u32>,
    /// Binary max-heap of AA ids, ordered by `scores`.
    heap: Vec<AaId>,
    /// Position of each AA in `heap`, or `ABSENT`.
    pos: Vec<usize>,
    /// Whether every AA of the group is present (false between a TopAA
    /// seed and the completion of the background rebuild).
    complete: bool,
    /// Volatile maintenance counters (not persisted).
    stats: HeapCacheStats,
}

impl RaidAwareCache {
    /// Build a complete cache from every AA's score. `scores[i]` belongs
    /// to `AaId(i)`; `max_scores[i]` is that AA's block count.
    pub fn new_full(scores: Vec<AaScore>, max_scores: Vec<u32>) -> WaflResult<RaidAwareCache> {
        if scores.len() != max_scores.len() {
            return Err(WaflError::InvalidConfig {
                reason: format!(
                    "scores ({}) and max_scores ({}) length mismatch",
                    scores.len(),
                    max_scores.len()
                ),
            });
        }
        let n = scores.len();
        let mut cache = RaidAwareCache {
            scores,
            max_scores,
            heap: (0..n as u32).map(AaId).collect(),
            pos: (0..n).collect(),
            complete: true,
            stats: HeapCacheStats::default(),
        };
        // Floyd heapify: O(n).
        for i in (0..n / 2).rev() {
            cache.sift_down(i);
        }
        Ok(cache)
    }

    /// Build a partial cache from TopAA seed entries: only the listed AAs
    /// participate until [`RaidAwareCache::absorb_rebuild`] supplies the
    /// rest (§3.4: "enough to seed the max-heap with high-quality AAs until
    /// background work can rebuild the entire cache").
    pub fn seeded(max_scores: Vec<u32>, entries: &[(AaId, AaScore)]) -> WaflResult<RaidAwareCache> {
        let n = max_scores.len();
        let mut cache = RaidAwareCache {
            scores: vec![AaScore(0); n],
            max_scores,
            heap: Vec::with_capacity(entries.len()),
            pos: vec![ABSENT; n],
            complete: false,
            stats: HeapCacheStats::default(),
        };
        for &(aa, score) in entries {
            if aa.index() >= n {
                return Err(WaflError::AaOutOfRange {
                    aa,
                    aa_count: n as u32,
                });
            }
            if cache.pos[aa.index()] != ABSENT {
                return Err(WaflError::CorruptMetafile {
                    reason: format!("duplicate {aa} in TopAA seed"),
                });
            }
            cache.scores[aa.index()] = AaScore(score.get().min(cache.max_scores[aa.index()]));
            cache.pos[aa.index()] = cache.heap.len();
            cache.heap.push(aa);
        }
        for i in (0..cache.heap.len() / 2).rev() {
            cache.sift_down(i);
        }
        // A seed that happens to cover every AA (small groups) is complete.
        cache.complete = cache.heap.len() == n;
        Ok(cache)
    }

    /// Complete a seeded cache with authoritative scores from a background
    /// bitmap walk. Present AAs are corrected; absent AAs are inserted.
    pub fn absorb_rebuild(&mut self, all_scores: &[(AaId, AaScore)]) -> WaflResult<()> {
        for &(aa, score) in all_scores {
            if aa.index() >= self.scores.len() {
                return Err(WaflError::AaOutOfRange {
                    aa,
                    aa_count: self.scores.len() as u32,
                });
            }
            let clamped = AaScore(score.get().min(self.max_scores[aa.index()]));
            if self.pos[aa.index()] == ABSENT {
                self.scores[aa.index()] = clamped;
                self.pos[aa.index()] = self.heap.len();
                self.heap.push(aa);
                self.sift_up(self.heap.len() - 1);
            } else {
                self.set_score(aa, clamped);
            }
        }
        if self.heap.len() == self.scores.len() {
            self.complete = true;
        }
        Ok(())
    }

    /// Number of AAs currently tracked.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no AAs are tracked.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Whether every AA of the group is present.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// The best (emptiest) AA and its score — the write allocator's query
    /// ("WAFL always targets writes to the emptiest AA", §3.1).
    pub fn best(&self) -> Option<(AaId, AaScore)> {
        self.heap.first().map(|&aa| (aa, self.scores[aa.index()]))
    }

    /// Remove and return the best AA. Used by segment cleaning, which
    /// claims each AA near the top of the heap exactly once (§3.3.1).
    pub fn take_best(&mut self) -> Option<(AaId, AaScore)> {
        let &best = self.heap.first()?;
        self.remove(best);
        Some((best, self.scores[best.index()]))
    }

    /// Re-insert an AA removed via [`RaidAwareCache::take_best`], with a
    /// (possibly new) score.
    pub fn insert(&mut self, aa: AaId, score: AaScore) -> WaflResult<()> {
        if aa.index() >= self.scores.len() {
            return Err(WaflError::AaOutOfRange {
                aa,
                aa_count: self.scores.len() as u32,
            });
        }
        if self.pos[aa.index()] != ABSENT {
            self.set_score(aa, score);
            return Ok(());
        }
        self.scores[aa.index()] = AaScore(score.get().min(self.max_scores[aa.index()]));
        self.pos[aa.index()] = self.heap.len();
        self.heap.push(aa);
        self.sift_up(self.heap.len() - 1);
        if self.heap.len() == self.scores.len() {
            self.complete = true;
        }
        Ok(())
    }

    /// Whether `aa` is currently present in the heap (absent while being
    /// actively drained, or before a seeded cache's background rebuild).
    pub fn contains(&self, aa: AaId) -> bool {
        self.pos.get(aa.index()).is_some_and(|&p| p != ABSENT)
    }

    /// Current score of `aa` (0 for AAs absent from a seeded cache).
    pub fn score_of(&self, aa: AaId) -> AaScore {
        self.scores.get(aa.index()).copied().unwrap_or(AaScore(0))
    }

    /// Apply one CP's batched deltas and rebalance (§3.3.1). Deltas for
    /// AAs absent from a seeded cache update the stored score but do not
    /// insert them — the background rebuild will, with authoritative
    /// values.
    pub fn apply_batch(&mut self, batch: &mut ScoreDeltaBatch) {
        self.stats.rebalances += 1;
        for (aa, delta) in batch.drain() {
            if aa.index() >= self.scores.len() {
                continue; // stale delta from a grown/regrown group; ignore
            }
            self.stats.rebalance_updates += 1;
            let new = self.scores[aa.index()].apply(delta, self.max_scores[aa.index()]);
            if self.pos[aa.index()] == ABSENT {
                self.scores[aa.index()] = new;
            } else {
                self.set_score(aa, new);
            }
        }
    }

    /// The `k` best AAs in descending score order — what the TopAA
    /// metafile persists (§3.4). `O(n + k log n)` on a scratch copy; runs
    /// at CP frequency, not in the allocation path.
    pub fn top_k(&self, k: usize) -> Vec<(AaId, AaScore)> {
        let mut all: Vec<(AaId, AaScore)> = self
            .heap
            .iter()
            .map(|&aa| (aa, self.scores[aa.index()]))
            .collect();
        let k = k.min(all.len());
        if k == 0 {
            return Vec::new();
        }
        all.select_nth_unstable_by(k - 1, |a, b| Self::cmp_entries(b, a));
        all.truncate(k);
        all.sort_unstable_by(|a, b| Self::cmp_entries(b, a));
        all
    }

    /// Bytes of memory the cache uses for AA tracking (the §3.3.1 linear-
    /// in-capacity cost the RAID-agnostic design avoids).
    pub fn memory_bytes(&self) -> usize {
        self.scores.len() * std::mem::size_of::<AaScore>()
            + self.max_scores.len() * std::mem::size_of::<u32>()
            + self.heap.capacity() * std::mem::size_of::<AaId>()
            + self.pos.len() * std::mem::size_of::<usize>()
    }

    #[inline]
    fn cmp_entries(a: &(AaId, AaScore), b: &(AaId, AaScore)) -> std::cmp::Ordering {
        // Score first; ties broken by a scrambled id. Real WAFL's heap
        // makes no adjacency promise among equal scores, and experiments
        // (Fig 9) depend on AA switches NOT being numerically contiguous,
        // so a deterministic scramble models the production behaviour.
        a.1.cmp(&b.1)
            .then_with(|| scramble(b.0.get()).cmp(&scramble(a.0.get())))
    }

    #[inline]
    fn greater(&self, a: AaId, b: AaId) -> bool {
        Self::cmp_entries(&(a, self.scores[a.index()]), &(b, self.scores[b.index()]))
            == std::cmp::Ordering::Greater
    }

    fn set_score(&mut self, aa: AaId, score: AaScore) {
        let old = self.scores[aa.index()];
        self.scores[aa.index()] = AaScore(score.get().min(self.max_scores[aa.index()]));
        let p = self.pos[aa.index()];
        debug_assert_ne!(p, ABSENT);
        if self.scores[aa.index()] > old {
            self.sift_up(p);
        } else {
            self.sift_down(p);
        }
    }

    fn remove(&mut self, aa: AaId) {
        let p = self.pos[aa.index()];
        debug_assert_ne!(p, ABSENT);
        let last = self.heap.len() - 1;
        self.swap(p, last);
        self.heap.pop();
        self.pos[aa.index()] = ABSENT;
        self.complete = false;
        if p < self.heap.len() {
            self.sift_down(p);
            self.sift_up(p.min(self.heap.len() - 1));
        }
    }

    /// Maintenance counters accumulated since construction or the last
    /// [`RaidAwareCache::take_stats`] call.
    pub fn stats(&self) -> HeapCacheStats {
        self.stats
    }

    /// Return and reset the maintenance counters (delta scrape).
    pub fn take_stats(&mut self) -> HeapCacheStats {
        std::mem::take(&mut self.stats)
    }

    #[inline]
    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a].index()] = a;
        self.pos[self.heap[b].index()] = b;
        self.stats.sift_swaps += 1;
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.greater(self.heap[i], self.heap[parent]) {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut m = i;
            if l < n && self.greater(self.heap[l], self.heap[m]) {
                m = l;
            }
            if r < n && self.greater(self.heap[r], self.heap[m]) {
                m = r;
            }
            if m == i {
                break;
            }
            self.swap(i, m);
            i = m;
        }
    }

    #[cfg(test)]
    fn assert_heap_invariants(&self) {
        for i in 1..self.heap.len() {
            let parent = (i - 1) / 2;
            assert!(
                !self.greater(self.heap[i], self.heap[parent]),
                "heap order violated at {i}"
            );
        }
        for (i, &aa) in self.heap.iter().enumerate() {
            assert_eq!(self.pos[aa.index()], i, "pos index broken for {aa}");
        }
        let present = self.pos.iter().filter(|&&p| p != ABSENT).count();
        assert_eq!(present, self.heap.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn scores(v: &[u32]) -> Vec<AaScore> {
        v.iter().map(|&s| AaScore(s)).collect()
    }

    #[test]
    fn best_is_max_score() {
        let c = RaidAwareCache::new_full(scores(&[5, 9, 3, 9, 1]), vec![10; 5]).unwrap();
        // Tie between AA1 and AA3 at 9: either wins, but the score is 9
        // and the choice is deterministic.
        let (aa, score) = c.best().unwrap();
        assert_eq!(score, AaScore(9));
        assert!(aa == AaId(1) || aa == AaId(3));
        assert_eq!(c.best(), Some((aa, score)), "deterministic");
        assert_eq!(c.len(), 5);
        assert!(c.is_complete());
    }

    #[test]
    fn mismatched_lengths_rejected() {
        assert!(RaidAwareCache::new_full(scores(&[1, 2]), vec![10]).is_err());
    }

    #[test]
    fn apply_batch_rebalances() {
        let mut c = RaidAwareCache::new_full(scores(&[5, 9, 3]), vec![10; 3]).unwrap();
        let mut b = ScoreDeltaBatch::new();
        b.record_allocated(AaId(1), 8); // 9 -> 1
        b.record_freed(AaId(2), 6); // 3 -> 9
        c.apply_batch(&mut b);
        assert_eq!(c.best(), Some((AaId(2), AaScore(9))));
        assert_eq!(c.score_of(AaId(1)), AaScore(1));
        c.assert_heap_invariants();
    }

    #[test]
    fn stats_count_rebalances_and_reset() {
        let mut c = RaidAwareCache::new_full(scores(&[5, 9, 3, 1]), vec![10; 4]).unwrap();
        let _ = c.take_stats(); // discard heapify swaps
        let mut b = ScoreDeltaBatch::new();
        b.record_allocated(AaId(1), 8);
        b.record_freed(AaId(3), 9);
        c.apply_batch(&mut b);
        let s = c.stats();
        assert_eq!(s.rebalances, 1);
        assert_eq!(s.rebalance_updates, 2);
        assert!(s.sift_swaps >= 1, "reordering must swap");
        assert_eq!(c.take_stats(), s);
        assert_eq!(c.stats(), HeapCacheStats::default(), "take resets");
    }

    #[test]
    fn take_best_and_reinsert() {
        let mut c = RaidAwareCache::new_full(scores(&[5, 9, 3]), vec![10; 3]).unwrap();
        let (aa, s) = c.take_best().unwrap();
        assert_eq!((aa, s), (AaId(1), AaScore(9)));
        assert_eq!(c.len(), 2);
        assert_eq!(c.best(), Some((AaId(0), AaScore(5))));
        // Cleaned AA comes back empty (max score).
        c.insert(AaId(1), AaScore(10)).unwrap();
        assert_eq!(c.best(), Some((AaId(1), AaScore(10))));
        c.assert_heap_invariants();
    }

    #[test]
    fn top_k_descends() {
        let c = RaidAwareCache::new_full(scores(&[5, 9, 3, 7, 1, 8]), vec![10; 6]).unwrap();
        let top = c.top_k(3);
        assert_eq!(
            top,
            vec![
                (AaId(1), AaScore(9)),
                (AaId(5), AaScore(8)),
                (AaId(3), AaScore(7))
            ]
        );
        assert_eq!(c.top_k(100).len(), 6);
        assert_eq!(c.top_k(0), vec![]);
    }

    #[test]
    fn seeded_cache_serves_until_rebuild() {
        let max = vec![100u32; 1000];
        let seed = vec![(AaId(7), AaScore(90)), (AaId(3), AaScore(80))];
        let mut c = RaidAwareCache::seeded(max, &seed).unwrap();
        assert!(!c.is_complete());
        assert_eq!(c.len(), 2);
        assert_eq!(c.best(), Some((AaId(7), AaScore(90))));

        // Background rebuild: authoritative scores for all 1000 AAs.
        let all: Vec<(AaId, AaScore)> = (0..1000)
            .map(|i| (AaId(i), AaScore(if i == 500 { 99 } else { 10 })))
            .collect();
        c.absorb_rebuild(&all).unwrap();
        assert!(c.is_complete());
        assert_eq!(c.len(), 1000);
        assert_eq!(c.best(), Some((AaId(500), AaScore(99))));
    }

    #[test]
    fn seeded_rejects_bad_entries() {
        assert!(RaidAwareCache::seeded(vec![10; 4], &[(AaId(4), AaScore(1))]).is_err());
        assert!(RaidAwareCache::seeded(
            vec![10; 4],
            &[(AaId(1), AaScore(1)), (AaId(1), AaScore(2))]
        )
        .is_err());
    }

    #[test]
    fn deltas_for_absent_aas_stick_after_rebuild_insert() {
        // A delta arriving while the AA is absent from a seeded cache must
        // not be lost — the stored score carries it.
        let mut c = RaidAwareCache::seeded(vec![100; 10], &[(AaId(0), AaScore(50))]).unwrap();
        let mut b = ScoreDeltaBatch::new();
        b.record_freed(AaId(5), 30);
        c.apply_batch(&mut b);
        assert_eq!(c.score_of(AaId(5)), AaScore(30));
        assert_eq!(c.len(), 1, "absent AA not inserted by a delta");
    }

    #[test]
    fn scores_clamp_to_aa_capacity() {
        let mut c = RaidAwareCache::new_full(scores(&[5]), vec![8]).unwrap();
        let mut b = ScoreDeltaBatch::new();
        b.record_freed(AaId(0), 100);
        c.apply_batch(&mut b);
        assert_eq!(c.score_of(AaId(0)), AaScore(8));
    }

    #[test]
    fn memory_is_linear_in_aa_count_only() {
        let small = RaidAwareCache::new_full(scores(&vec![1; 1000]), vec![10; 1000]).unwrap();
        let big = RaidAwareCache::new_full(scores(&vec![1; 10000]), vec![10; 10000]).unwrap();
        let ratio = big.memory_bytes() as f64 / small.memory_bytes() as f64;
        assert!((9.0..11.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn randomized_operations_preserve_invariants() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 300usize;
        let init: Vec<AaScore> = (0..n).map(|_| AaScore(rng.random_range(0..1000))).collect();
        let mut c = RaidAwareCache::new_full(init.clone(), vec![1000; n]).unwrap();
        let mut shadow: Vec<u32> = init.iter().map(|s| s.get()).collect();
        for _ in 0..2000 {
            let aa = rng.random_range(0..n as u32);
            let mut b = ScoreDeltaBatch::new();
            if rng.random_bool(0.5) {
                let d = rng.random_range(0..200);
                b.record_freed(AaId(aa), d);
                shadow[aa as usize] = (shadow[aa as usize] + d).min(1000);
            } else {
                let d = rng.random_range(0..200);
                b.record_allocated(AaId(aa), d);
                shadow[aa as usize] = shadow[aa as usize].saturating_sub(d);
            }
            c.apply_batch(&mut b);
        }
        c.assert_heap_invariants();
        let best_shadow = shadow.iter().copied().max().unwrap();
        assert_eq!(c.best().unwrap().1, AaScore(best_shadow));
        for (i, &s) in shadow.iter().enumerate() {
            assert_eq!(c.score_of(AaId(i as u32)), AaScore(s));
        }
    }
}
