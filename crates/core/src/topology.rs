//! How allocation areas tile a block-number space.

use wafl_bitmap::Bitmap;
use wafl_raid::RaidGeometry;
use wafl_types::{AaId, AaScore, AaSizingPolicy, Vbn, WaflError, WaflResult, TETRIS_STRIPES};

/// The AA tiling of one block-number space (§3.1).
///
/// Two shapes exist:
/// * **RAID-aware** — an AA is a run of consecutive stripes across all
///   data devices of a RAID group, so it is one VBN range *per device*.
/// * **RAID-agnostic** — an AA is a single run of consecutive VBNs. Used
///   for FlexVol virtual VBNs and physical storage with native redundancy.
///
/// All score computation goes through this type so that caches never need
/// to know which shape they serve.
#[derive(Clone, Debug)]
pub enum AaTopology {
    /// Consecutive stripes of a RAID group.
    RaidAware {
        /// The group's geometry (device count, capacity, PVBN base).
        geometry: RaidGeometry,
        /// AA height in stripes.
        stripes_per_aa: u64,
    },
    /// Consecutive VBNs of a flat space.
    RaidAgnostic {
        /// Number of VBNs in the space.
        space_len: u64,
        /// Blocks per AA.
        aa_blocks: u64,
    },
}

impl AaTopology {
    /// Build the RAID-aware topology for `geometry` under `policy`.
    /// Errors if the policy is RAID-agnostic.
    pub fn raid_aware(geometry: RaidGeometry, policy: AaSizingPolicy) -> WaflResult<AaTopology> {
        let stripes_per_aa = policy
            .stripes_per_aa()
            .ok_or_else(|| WaflError::InvalidConfig {
                reason: "RAID-aware topology needs a stripe-based sizing policy".into(),
            })?;
        if stripes_per_aa == 0 {
            return Err(WaflError::InvalidConfig {
                reason: "stripes_per_aa must be positive".into(),
            });
        }
        Ok(AaTopology::RaidAware {
            geometry,
            stripes_per_aa,
        })
    }

    /// Build the RAID-agnostic topology for a flat space of `space_len`
    /// VBNs under `policy`. Errors if the policy is RAID-aware.
    pub fn raid_agnostic(space_len: u64, policy: AaSizingPolicy) -> WaflResult<AaTopology> {
        let aa_blocks = policy
            .blocks_per_aa()
            .ok_or_else(|| WaflError::InvalidConfig {
                reason: "RAID-agnostic topology needs a consecutive-VBN sizing policy".into(),
            })?;
        if aa_blocks == 0 {
            return Err(WaflError::InvalidConfig {
                reason: "aa_blocks must be positive".into(),
            });
        }
        Ok(AaTopology::RaidAgnostic {
            space_len,
            aa_blocks,
        })
    }

    /// Number of AAs tiling the space (the trailing partial AA counts).
    pub fn aa_count(&self) -> u32 {
        match self {
            AaTopology::RaidAware {
                geometry,
                stripes_per_aa,
            } => geometry.aa_count(*stripes_per_aa),
            AaTopology::RaidAgnostic {
                space_len,
                aa_blocks,
            } => space_len.div_ceil(*aa_blocks) as u32,
        }
    }

    /// Total blocks (and thus the maximum score) of AA `aa`.
    pub fn aa_blocks(&self, aa: AaId) -> u64 {
        match self {
            AaTopology::RaidAware {
                geometry,
                stripes_per_aa,
            } => geometry.aa_blocks(aa, *stripes_per_aa),
            AaTopology::RaidAgnostic {
                space_len,
                aa_blocks,
            } => {
                let start = aa.get() as u64 * *aa_blocks;
                (*aa_blocks).min(space_len.saturating_sub(start))
            }
        }
    }

    /// Maximum score over all AAs in this topology (full-size AA block
    /// count). The HBPS bins span `0..=max_score()`.
    pub fn max_score(&self) -> u32 {
        match self {
            AaTopology::RaidAware {
                geometry,
                stripes_per_aa,
            } => (*stripes_per_aa * geometry.data_devices as u64) as u32,
            AaTopology::RaidAgnostic { aa_blocks, .. } => *aa_blocks as u32,
        }
    }

    /// The VBN runs making up AA `aa`: one per data device for RAID-aware
    /// topologies, exactly one for RAID-agnostic.
    pub fn aa_vbn_ranges(&self, aa: AaId) -> Vec<(Vbn, u64)> {
        match self {
            AaTopology::RaidAware {
                geometry,
                stripes_per_aa,
            } => geometry.aa_vbn_ranges(aa, *stripes_per_aa).collect(),
            AaTopology::RaidAgnostic {
                space_len,
                aa_blocks,
            } => {
                let start = aa.get() as u64 * *aa_blocks;
                let len = (*aa_blocks).min(space_len.saturating_sub(start));
                if len == 0 {
                    vec![]
                } else {
                    vec![(Vbn(start), len)]
                }
            }
        }
    }

    /// The VBN runs of AA `aa` in *write-allocation order*: the order the
    /// allocator assigns VBNs so that draining an empty AA produces full
    /// stripes *and* long per-device chains (§2.3–2.4).
    ///
    /// RAID-aware AAs are walked tetris by tetris (64 consecutive stripes,
    /// §4.2): within each tetris, one 64-block chain per data device. A
    /// fully drained tetris is 64 full stripes written as D sequential
    /// chains. RAID-agnostic AAs are a single run already.
    pub fn aa_write_ranges(&self, aa: AaId) -> Vec<(Vbn, u64)> {
        match self {
            AaTopology::RaidAware {
                geometry,
                stripes_per_aa,
            } => {
                let (start, end) = geometry.aa_stripe_range(aa, *stripes_per_aa);
                let base = geometry.base_vbn.get();
                let dev_blocks = geometry.device_blocks;
                let mut out = Vec::with_capacity(
                    ((end - start).div_ceil(TETRIS_STRIPES) * geometry.data_devices as u64)
                        as usize,
                );
                let mut t = start;
                while t < end {
                    let len = TETRIS_STRIPES.min(end - t);
                    for d in 0..geometry.data_devices {
                        out.push((Vbn(base + d as u64 * dev_blocks + t), len));
                    }
                    t += len;
                }
                out
            }
            AaTopology::RaidAgnostic { .. } => self.aa_vbn_ranges(aa),
        }
    }

    /// The AA containing `vbn`, plus the end (exclusive) of the maximal
    /// run of consecutive VBNs from `vbn` that stay inside that AA. Bulk
    /// paths that walk sorted VBN lists (the CP delayed-free coalescers)
    /// use the span end to tag whole runs with one lookup instead of one
    /// `aa_of_vbn` per block: within `vbn..end` the AA cannot change.
    ///
    /// For RAID-aware topologies the span ends where the device's current
    /// stripe band does (an AA is one VBN run *per device*); for RAID-
    /// agnostic topologies it ends at the AA boundary itself.
    pub fn aa_span_of_vbn(&self, vbn: Vbn) -> WaflResult<(AaId, Vbn)> {
        match self {
            AaTopology::RaidAware {
                geometry,
                stripes_per_aa,
            } => {
                let base = geometry.base_vbn.get();
                let data_span = geometry.data_devices as u64 * geometry.device_blocks;
                if vbn.get() < base || vbn.get() >= base + data_span {
                    return Err(WaflError::VbnOutOfRange {
                        vbn,
                        space_len: base + data_span,
                    });
                }
                let offset = vbn.get() - base;
                let dev = offset / geometry.device_blocks;
                let t = offset % geometry.device_blocks;
                let aa = t / stripes_per_aa;
                let band_end = ((aa + 1) * stripes_per_aa).min(geometry.device_blocks);
                Ok((
                    AaId(aa as u32),
                    Vbn(base + dev * geometry.device_blocks + band_end),
                ))
            }
            AaTopology::RaidAgnostic {
                space_len,
                aa_blocks,
            } => {
                if vbn.get() >= *space_len {
                    return Err(WaflError::VbnOutOfRange {
                        vbn,
                        space_len: *space_len,
                    });
                }
                let aa = vbn.get() / aa_blocks;
                Ok((AaId(aa as u32), Vbn(((aa + 1) * aa_blocks).min(*space_len))))
            }
        }
    }

    /// The AA containing `vbn`.
    pub fn aa_of_vbn(&self, vbn: Vbn) -> WaflResult<AaId> {
        match self {
            AaTopology::RaidAware {
                geometry,
                stripes_per_aa,
            } => geometry.aa_of_vbn(vbn, *stripes_per_aa),
            AaTopology::RaidAgnostic {
                space_len,
                aa_blocks,
            } => {
                if vbn.get() >= *space_len {
                    return Err(WaflError::VbnOutOfRange {
                        vbn,
                        space_len: *space_len,
                    });
                }
                Ok(vbn.aa(*aa_blocks))
            }
        }
    }

    /// Compute AA `aa`'s score by consulting the bitmap metafile (§3.3:
    /// "the number of free blocks in the AA, computed by consulting bitmap
    /// metafiles"). For RAID-aware topologies the bitmap indexes the
    /// aggregate's physical VBNs; for RAID-agnostic ones, the flat space.
    ///
    /// A RAID-agnostic topology whose tiling matches the bitmap's enabled
    /// per-AA summary reads the counter directly — O(1), no bitmap words
    /// touched. Everything else goes through the range query, which the
    /// per-page counters keep at O(partial edge pages).
    pub fn score_from_bitmap(&self, bitmap: &Bitmap, aa: AaId) -> AaScore {
        if let AaTopology::RaidAgnostic { aa_blocks, .. } = self {
            if let Some(counts) = bitmap.aa_free_counts(*aa_blocks) {
                return AaScore(counts.get(aa.index()).copied().unwrap_or(0));
            }
        }
        let mut free = 0u32;
        for (start, len) in self.aa_vbn_ranges(aa) {
            free += bitmap.free_count_range(start, len);
        }
        AaScore(free)
    }

    /// Compute every AA's score with one walk (the expensive path the
    /// TopAA metafile avoids at mount, §3.4). RAID-agnostic tilings reuse
    /// the summary-aware scan kernel; RAID-aware tilings walk their
    /// per-device ranges, each range a summary-accelerated count.
    /// Sequential; the parallel variant lives in `wafl_bitmap::scan` and
    /// is used by background rebuilds.
    pub fn all_scores(&self, bitmap: &Bitmap) -> Vec<(AaId, AaScore)> {
        if let AaTopology::RaidAgnostic { aa_blocks, .. } = self {
            return wafl_bitmap::scan::scores_seq(bitmap, *aa_blocks);
        }
        (0..self.aa_count())
            .map(|a| (AaId(a), self.score_from_bitmap(bitmap, AaId(a))))
            .collect()
    }

    /// Whether this topology is RAID-aware.
    pub fn is_raid_aware(&self) -> bool {
        matches!(self, AaTopology::RaidAware { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wafl_types::{RaidGroupId, RAID_AGNOSTIC_AA_BLOCKS};

    fn raid_topo() -> AaTopology {
        let g = RaidGeometry::new(RaidGroupId(0), 3, 1, 4096, Vbn(0)).unwrap();
        AaTopology::raid_aware(g, AaSizingPolicy::Stripes { stripes: 1024 }).unwrap()
    }

    #[test]
    fn construction_rejects_mismatched_policies() {
        let g = RaidGeometry::new(RaidGroupId(0), 3, 1, 4096, Vbn(0)).unwrap();
        assert!(AaTopology::raid_aware(g, AaSizingPolicy::raid_agnostic()).is_err());
        assert!(
            AaTopology::raid_agnostic(1 << 20, AaSizingPolicy::Stripes { stripes: 4096 }).is_err()
        );
    }

    #[test]
    fn aa_span_agrees_with_per_vbn_lookup() {
        // A base offset plus a trailing short AA on the RAID-aware side; a
        // short trailing AA on the agnostic side. Every VBN's span must
        // start in its own AA and cover exactly the same-AA suffix.
        let g = RaidGeometry::new(RaidGroupId(0), 3, 1, 1000, Vbn(5000)).unwrap();
        let topos = [
            AaTopology::raid_aware(g, AaSizingPolicy::Stripes { stripes: 300 }).unwrap(),
            AaTopology::raid_agnostic(
                2 * RAID_AGNOSTIC_AA_BLOCKS + 100,
                AaSizingPolicy::raid_agnostic(),
            )
            .unwrap(),
        ];
        for t in &topos {
            let (lo, hi) = match t {
                AaTopology::RaidAware { geometry, .. } => (
                    geometry.base_vbn.get(),
                    geometry.base_vbn.get() + geometry.data_devices as u64 * geometry.device_blocks,
                ),
                AaTopology::RaidAgnostic { space_len, .. } => (0, *space_len),
            };
            assert!(t.aa_span_of_vbn(Vbn(hi)).is_err());
            let mut vbn = lo;
            while vbn < hi {
                let (aa, end) = t.aa_span_of_vbn(Vbn(vbn)).unwrap();
                assert_eq!(aa, t.aa_of_vbn(Vbn(vbn)).unwrap());
                assert!(end.get() > vbn && end.get() <= hi);
                // Everything in the span shares the AA; the span is maximal
                // (the next VBN, if in range, is in a different AA or a
                // different device run).
                assert_eq!(t.aa_of_vbn(Vbn(end.get() - 1)).unwrap(), aa);
                vbn = end.get();
            }
        }
    }

    #[test]
    fn raid_aware_counts() {
        let t = raid_topo();
        assert_eq!(t.aa_count(), 4);
        assert_eq!(t.max_score(), 3 * 1024);
        assert_eq!(t.aa_blocks(AaId(0)), 3 * 1024);
        assert!(t.is_raid_aware());
        // 3 devices -> 3 VBN runs per AA.
        assert_eq!(t.aa_vbn_ranges(AaId(2)).len(), 3);
    }

    #[test]
    fn raid_agnostic_counts() {
        let t = AaTopology::raid_agnostic(100_000, AaSizingPolicy::raid_agnostic()).unwrap();
        assert_eq!(t.aa_count(), 4); // ceil(100_000 / 32768)
        assert_eq!(t.max_score(), RAID_AGNOSTIC_AA_BLOCKS as u32);
        // Trailing partial AA.
        assert_eq!(t.aa_blocks(AaId(3)), 100_000 - 3 * RAID_AGNOSTIC_AA_BLOCKS);
        assert_eq!(
            t.aa_vbn_ranges(AaId(3)),
            vec![(
                Vbn(3 * RAID_AGNOSTIC_AA_BLOCKS),
                100_000 - 3 * RAID_AGNOSTIC_AA_BLOCKS
            )]
        );
        assert!(!t.is_raid_aware());
    }

    #[test]
    fn scores_partition_free_space() {
        let t = raid_topo();
        let mut bitmap = Bitmap::new(3 * 4096);
        // Allocate the whole first AA (stripes 0..1024 on 3 devices).
        for (start, len) in t.aa_vbn_ranges(AaId(0)) {
            for v in start.get()..start.get() + len {
                bitmap.allocate(Vbn(v)).unwrap();
            }
        }
        let scores = t.all_scores(&bitmap);
        assert_eq!(scores[0].1, AaScore(0));
        for &(_, s) in &scores[1..] {
            assert_eq!(s, AaScore(3 * 1024));
        }
        let total: u64 = scores.iter().map(|&(_, s)| s.get() as u64).sum();
        assert_eq!(total, bitmap.free_blocks());
    }

    #[test]
    fn aa_of_vbn_agrees_with_ranges() {
        for t in [
            raid_topo(),
            AaTopology::raid_agnostic(100_000, AaSizingPolicy::raid_agnostic()).unwrap(),
        ] {
            for a in 0..t.aa_count() {
                for (start, len) in t.aa_vbn_ranges(AaId(a)) {
                    assert_eq!(t.aa_of_vbn(start).unwrap(), AaId(a));
                    assert_eq!(t.aa_of_vbn(Vbn(start.get() + len - 1)).unwrap(), AaId(a));
                }
            }
        }
    }

    #[test]
    fn out_of_space_vbn_rejected() {
        let t = AaTopology::raid_agnostic(1000, AaSizingPolicy::ConsecutiveVbns { blocks: 100 })
            .unwrap();
        assert!(t.aa_of_vbn(Vbn(1000)).is_err());
        assert!(t.aa_of_vbn(Vbn(999)).is_ok());
    }
}
