//! The TopAA metafile (§3.4): persisting AA caches across unmounts.
//!
//! * Each **RAID-aware** cache persists one 4 KiB block holding its 512
//!   best `(AA, score)` pairs — enough to seed the max-heap and sustain
//!   CPs for dozens of seconds while a background walk rebuilds the rest.
//! * Each **RAID-agnostic** cache persists its two HBPS pages verbatim
//!   (see [`crate::RaidAgnosticCache::to_topaa`]); nothing to do here.
//!
//! Block format (exactly one 4 KiB block): 511 entries of `(u32 aa,
//! u32 score)` little-endian, sorted by descending score, unused slots
//! carrying the sentinel AA `u32::MAX`, then a trailing CRC64 of the
//! first 4088 bytes. The paper's block is headerless and holds 512
//! entries; giving up one slot for the CRC makes corruption *detection*
//! deterministic instead of relying on the sort/sentinel checks to
//! stumble over damage (see `docs/recovery.md`). On a CRC or structure
//! mismatch deserialization fails loudly with `CorruptMetafile` — the
//! paper's §3.4 corruption story: fall back to WAFL Iron / a full
//! bitmap walk.

use crate::heap_cache::RaidAwareCache;
use bytes::{Buf, BufMut};
use wafl_types::{
    crc64, AaId, AaScore, WaflError, WaflResult, BLOCK_SIZE, TOPAA_RAID_AWARE_ENTRIES,
};

/// Sentinel marking an unused entry slot.
const SENTINEL: u32 = u32::MAX;

/// Serialize the 511 best AAs of a RAID-aware cache into its CRC-sealed
/// TopAA block.
pub fn serialize_raid_aware(cache: &RaidAwareCache) -> [u8; BLOCK_SIZE] {
    let top = cache.top_k(TOPAA_RAID_AWARE_ENTRIES);
    let mut block = [0u8; BLOCK_SIZE];
    let mut w = &mut block[..];
    for &(aa, score) in &top {
        w.put_u32_le(aa.get());
        w.put_u32_le(score.get());
    }
    for _ in top.len()..TOPAA_RAID_AWARE_ENTRIES {
        w.put_u32_le(SENTINEL);
        w.put_u32_le(0);
    }
    crc64::seal_page(&mut block);
    block
}

/// Decode a TopAA block into seed entries for [`RaidAwareCache::seeded`].
pub fn deserialize_raid_aware(block: &[u8; BLOCK_SIZE]) -> WaflResult<Vec<(AaId, AaScore)>> {
    if !crc64::verify_page(block) {
        return Err(WaflError::CorruptMetafile {
            reason: "TopAA block CRC mismatch".to_string(),
        });
    }
    let mut r = &block[..];
    let mut out = Vec::new();
    let mut prev_score: Option<u32> = None;
    let mut in_tail = false;
    for i in 0..TOPAA_RAID_AWARE_ENTRIES {
        let aa = r.get_u32_le();
        let score = r.get_u32_le();
        if aa == SENTINEL {
            if score != 0 {
                return Err(WaflError::CorruptMetafile {
                    reason: format!("TopAA entry {i}: sentinel with nonzero score"),
                });
            }
            in_tail = true;
            continue;
        }
        if in_tail {
            return Err(WaflError::CorruptMetafile {
                reason: format!("TopAA entry {i}: live entry after sentinel tail"),
            });
        }
        if let Some(prev) = prev_score {
            if score > prev {
                return Err(WaflError::CorruptMetafile {
                    reason: format!(
                        "TopAA entry {i}: score {score} exceeds predecessor {prev} \
                         (block not sorted)"
                    ),
                });
            }
        }
        prev_score = Some(score);
        out.push((AaId(aa), AaScore(score)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache_with(scores: &[u32]) -> RaidAwareCache {
        RaidAwareCache::new_full(
            scores.iter().map(|&s| AaScore(s)).collect(),
            vec![u32::MAX; scores.len()],
        )
        .unwrap()
    }

    #[test]
    fn round_trip_small_cache() {
        let cache = cache_with(&[5, 9, 3, 7]);
        let block = serialize_raid_aware(&cache);
        let entries = deserialize_raid_aware(&block).unwrap();
        assert_eq!(
            entries,
            vec![
                (AaId(1), AaScore(9)),
                (AaId(3), AaScore(7)),
                (AaId(0), AaScore(5)),
                (AaId(2), AaScore(3)),
            ]
        );
    }

    #[test]
    fn truncates_to_511_best() {
        let scores: Vec<u32> = (0..2000).collect();
        let cache = cache_with(&scores);
        let block = serialize_raid_aware(&cache);
        let entries = deserialize_raid_aware(&block).unwrap();
        assert_eq!(entries.len(), TOPAA_RAID_AWARE_ENTRIES);
        assert_eq!(entries[0].1, AaScore(1999));
        assert_eq!(entries[510].1, AaScore(1999 - 510));
        // Descending throughout.
        assert!(entries.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn seeds_a_working_cache() {
        let scores: Vec<u32> = (0..2000).collect();
        let cache = cache_with(&scores);
        let block = serialize_raid_aware(&cache);
        let entries = deserialize_raid_aware(&block).unwrap();
        let seeded = RaidAwareCache::seeded(vec![u32::MAX; 2000], &entries).unwrap();
        assert_eq!(seeded.best(), Some((AaId(1999), AaScore(1999))));
        assert!(!seeded.is_complete());
        assert_eq!(seeded.len(), TOPAA_RAID_AWARE_ENTRIES);
    }

    #[test]
    fn any_scribble_fails_the_crc() {
        let cache = cache_with(&[5, 9, 3, 7]);
        let block = serialize_raid_aware(&cache);
        for offset in [0usize, 7, 100, 2048, BLOCK_SIZE - 9, BLOCK_SIZE - 1] {
            let mut damaged = block;
            damaged[offset] ^= 0x40;
            assert!(
                matches!(
                    deserialize_raid_aware(&damaged),
                    Err(WaflError::CorruptMetafile { .. })
                ),
                "scribble at byte {offset} undetected"
            );
        }
    }

    #[test]
    fn structural_corruption_detected_even_with_valid_crc() {
        // Re-seal after each scribble so the CRC passes and the
        // sort/sentinel validation has to catch the damage itself.
        let cache = cache_with(&[5, 9, 3, 7]);
        // Unsorted scores.
        let mut block = serialize_raid_aware(&cache);
        block[4..8].copy_from_slice(&1u32.to_le_bytes()); // first score 9 -> 1
        crc64::seal_page(&mut block);
        assert!(matches!(
            deserialize_raid_aware(&block),
            Err(WaflError::CorruptMetafile { .. })
        ));
        // Sentinel with nonzero score.
        let mut block = serialize_raid_aware(&cache);
        block[4 * 8 + 4..4 * 8 + 8].copy_from_slice(&7u32.to_le_bytes());
        crc64::seal_page(&mut block);
        assert!(deserialize_raid_aware(&block).is_err());
        // Live entry after the sentinel tail.
        let mut block = serialize_raid_aware(&cache);
        block[5 * 8..5 * 8 + 4].copy_from_slice(&2u32.to_le_bytes());
        crc64::seal_page(&mut block);
        assert!(deserialize_raid_aware(&block).is_err());
    }

    #[test]
    fn empty_cache_serializes_to_all_sentinels() {
        let cache = cache_with(&[]);
        let block = serialize_raid_aware(&cache);
        let entries = deserialize_raid_aware(&block).unwrap();
        assert!(entries.is_empty());
    }
}
