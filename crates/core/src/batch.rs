//! CP-boundary batching of AA score changes.

use std::collections::HashMap;
use wafl_types::{AaId, ScoreDelta};

/// Accumulates the score increments (frees) and decrements (allocations)
/// of one consistency point, to be applied to a cache in a single batch at
/// the CP boundary (§3.3: "AA score updates resulting from frees and
/// allocations are delayed and performed efficiently in batched fashion at
/// the CP boundary").
#[derive(Clone, Debug, Default)]
pub struct ScoreDeltaBatch {
    deltas: HashMap<AaId, ScoreDelta>,
}

impl ScoreDeltaBatch {
    /// An empty batch.
    pub fn new() -> ScoreDeltaBatch {
        ScoreDeltaBatch::default()
    }

    /// Record `n` blocks allocated from `aa` during this CP.
    pub fn record_allocated(&mut self, aa: AaId, n: u32) {
        *self.deltas.entry(aa).or_default() += ScoreDelta::allocated(n);
    }

    /// Record `n` blocks freed back to `aa` during this CP.
    pub fn record_freed(&mut self, aa: AaId, n: u32) {
        *self.deltas.entry(aa).or_default() += ScoreDelta::freed(n);
    }

    /// Merge another batch (e.g. a per-thread batch from the parallel
    /// allocator) into this one.
    pub fn merge(&mut self, other: ScoreDeltaBatch) {
        for (aa, d) in other.deltas {
            *self.deltas.entry(aa).or_default() += d;
        }
    }

    /// Number of AAs with a pending change.
    pub fn touched_aas(&self) -> usize {
        self.deltas.len()
    }

    /// True if nothing changed.
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// Drain the batch as `(aa, delta)` pairs, leaving it empty. Zero
    /// deltas (equal frees and allocations) are skipped — they cannot move
    /// an AA between heap positions or histogram bins.
    pub fn drain(&mut self) -> impl Iterator<Item = (AaId, ScoreDelta)> + '_ {
        self.deltas.drain().filter(|(_, d)| !d.is_zero())
    }

    /// Iterate without draining.
    pub fn iter(&self) -> impl Iterator<Item = (AaId, ScoreDelta)> + '_ {
        self.deltas.iter().map(|(&aa, &d)| (aa, d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_and_frees_net_out() {
        let mut b = ScoreDeltaBatch::new();
        b.record_allocated(AaId(1), 10);
        b.record_freed(AaId(1), 4);
        b.record_freed(AaId(2), 3);
        assert_eq!(b.touched_aas(), 2);
        let mut got: Vec<_> = b.drain().collect();
        got.sort_by_key(|&(aa, _)| aa);
        assert_eq!(
            got,
            vec![(AaId(1), ScoreDelta(-6)), (AaId(2), ScoreDelta(3))]
        );
        assert!(b.is_empty());
    }

    #[test]
    fn zero_net_deltas_are_skipped() {
        let mut b = ScoreDeltaBatch::new();
        b.record_allocated(AaId(5), 8);
        b.record_freed(AaId(5), 8);
        assert_eq!(b.touched_aas(), 1);
        assert_eq!(b.drain().count(), 0);
    }

    #[test]
    fn merge_combines_per_thread_batches() {
        let mut a = ScoreDeltaBatch::new();
        a.record_allocated(AaId(1), 5);
        let mut b = ScoreDeltaBatch::new();
        b.record_freed(AaId(1), 2);
        b.record_allocated(AaId(2), 1);
        a.merge(b);
        let mut got: Vec<_> = a.drain().collect();
        got.sort_by_key(|&(aa, _)| aa);
        assert_eq!(
            got,
            vec![(AaId(1), ScoreDelta(-3)), (AaId(2), ScoreDelta(-1))]
        );
    }
}
