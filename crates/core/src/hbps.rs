//! The histogram-based partial sort (HBPS) — §3.3.2's novel data
//! structure.
//!
//! Two 4 KiB pages track millions of allocation areas:
//!
//! * The **histogram page** counts *all* AAs in fixed-width score bins
//!   (default: 32 bins of 1 Ki over the 0..=32 Ki score space).
//! * The **list page** holds up to 1,000 AA ids from the best bins,
//!   grouped contiguously by bin, *unsorted within a bin* (sorting inside
//!   a 1 Ki-wide range "was found to be negligible" — the partial sort).
//!
//! The write allocator takes the first list entry, which is guaranteed to
//! come from the best populated bin in the list, giving a score within one
//! bin width of the true maximum (3.125 % = 1k/32k for the defaults).
//!
//! Moving an AA between bins costs O(1) histogram updates plus, when the
//! AA is in the list, at most one element move per deeper bin — the
//! boundary-rotation trick enabled by in-bin disorder ("only one AA needs
//! to be moved down from each bin present in the list").

use bytes::{Buf, BufMut};
use wafl_types::{
    crc64, AaId, AaScore, WaflError, WaflResult, BLOCK_SIZE, HBPS_BINS, HBPS_LIST_CAPACITY,
    RAID_AGNOSTIC_MAX_SCORE, TOPAA_CRC_BYTES,
};

const MAGIC: u32 = 0x4842_5053; // "HBPS"
const VERSION: u32 = 1;

/// Shape of an HBPS instance. The defaults reproduce the paper's
/// RAID-agnostic AA cache; other uses (e.g. delayed-free scores, §3.3.2)
/// pick their own score space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HbpsConfig {
    /// Highest possible score (an empty AA). Must be a positive multiple
    /// of `bins`.
    pub max_score: u32,
    /// Number of histogram bins.
    pub bins: usize,
    /// List-page capacity in entries. At most 1024 (one 4 KiB page of
    /// `u32` ids).
    pub list_capacity: usize,
}

impl Default for HbpsConfig {
    fn default() -> Self {
        HbpsConfig {
            max_score: RAID_AGNOSTIC_MAX_SCORE,
            bins: HBPS_BINS,
            list_capacity: HBPS_LIST_CAPACITY,
        }
    }
}

impl HbpsConfig {
    fn validate(&self) -> WaflResult<()> {
        if self.bins == 0 || self.max_score == 0 {
            return Err(WaflError::InvalidConfig {
                reason: "HBPS needs nonzero bins and max_score".into(),
            });
        }
        if !(self.max_score as usize).is_multiple_of(self.bins) {
            return Err(WaflError::InvalidConfig {
                reason: format!(
                    "max_score {} not a multiple of bin count {}",
                    self.max_score, self.bins
                ),
            });
        }
        // Both persisted pages reserve their trailing TOPAA_CRC_BYTES for
        // a CRC64 (see `to_pages`), shrinking the usable payload.
        if self.list_capacity == 0 || self.list_capacity * 4 + TOPAA_CRC_BYTES > BLOCK_SIZE {
            return Err(WaflError::InvalidConfig {
                reason: format!(
                    "list capacity {} does not fit one CRC-sealed 4 KiB page",
                    self.list_capacity
                ),
            });
        }
        if self.bins * 8 + 24 + TOPAA_CRC_BYTES > BLOCK_SIZE {
            return Err(WaflError::InvalidConfig {
                reason: format!("{} bins do not fit the histogram page", self.bins),
            });
        }
        Ok(())
    }

    /// Width of one score bin.
    pub fn bin_width(&self) -> u32 {
        self.max_score / self.bins as u32
    }

    /// The worst-case relative error of the best-AA query: one bin width
    /// over the score space (3.125 % for the defaults).
    pub fn error_margin(&self) -> f64 {
        self.bin_width() as f64 / self.max_score as f64
    }
}

/// Cumulative maintenance counters for one [`Hbps`] instance.
///
/// Volatile observability state: never persisted to the TopAA pages, and
/// reset by [`Hbps::take_stats`] so callers can scrape deltas into an
/// external metrics registry at CP boundaries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HbpsStats {
    /// Score changes that moved an AA between histogram bins.
    pub bin_moves: u64,
    /// Single-element boundary moves performed while walking a list hole
    /// across deeper segments (the §3.3.2 rotation trick).
    pub boundary_rotations: u64,
    /// Entries actually inserted into the list page.
    pub list_inserts: u64,
    /// Entries evicted from the deepest segment to admit a better AA.
    pub list_evictions: u64,
    /// Full list rebuilds via [`Hbps::replenish`].
    pub refills: u64,
}

impl HbpsStats {
    /// Accumulate another instance's counters into this one.
    pub fn merge(&mut self, other: HbpsStats) {
        self.bin_moves += other.bin_moves;
        self.boundary_rotations += other.boundary_rotations;
        self.list_inserts += other.list_inserts;
        self.list_evictions += other.list_evictions;
        self.refills += other.refills;
    }
}

/// The two-page histogram-based partial sort. See the module docs.
///
/// ```
/// use wafl_core::{Hbps, HbpsConfig};
/// use wafl_types::{AaId, AaScore};
///
/// // Track a million AAs in two pages of memory.
/// let mut hbps = Hbps::build(
///     HbpsConfig::default(),
///     (0..1_000_000).map(|i| (AaId(i), AaScore((i * 7) % 32_769))),
/// ).unwrap();
/// assert_eq!(hbps.memory_bytes(), 2 * 4096);
///
/// // The first list entry always comes from the best populated bin:
/// // within 3.125 % of the true maximum score.
/// let (_aa, bound) = hbps.take_best().unwrap();
/// assert!(bound.get() >= 32_768 - 1024);
///
/// // Score changes are O(bins): histogram count moves plus at most one
/// // list element per deeper bin. Scores beyond the configured space are
/// // rejected rather than silently clamped.
/// hbps.on_score_change(AaId(3), AaScore(21), AaScore(30_000)).unwrap();
/// assert!(hbps.on_score_change(AaId(3), AaScore(30_000), AaScore(40_000)).is_err());
/// ```
pub struct Hbps {
    cfg: HbpsConfig,
    /// AAs per bin, counting *every* tracked AA (bin 0 = best scores).
    counts: Vec<u32>,
    /// List-page entries, grouped by bin, best bins first.
    list: Vec<AaId>,
    /// Entries in `list` belonging to each bin.
    seg_len: Vec<u32>,
    /// Volatile maintenance counters (not persisted).
    stats: HbpsStats,
}

impl Hbps {
    /// An empty structure (no AAs tracked).
    pub fn new(cfg: HbpsConfig) -> WaflResult<Hbps> {
        cfg.validate()?;
        Ok(Hbps {
            counts: vec![0; cfg.bins],
            list: Vec::with_capacity(cfg.list_capacity),
            seg_len: vec![0; cfg.bins],
            cfg,
            stats: HbpsStats::default(),
        })
    }

    /// Build from a full set of `(aa, score)` pairs (a bitmap walk).
    pub fn build(
        cfg: HbpsConfig,
        scores: impl IntoIterator<Item = (AaId, AaScore)>,
    ) -> WaflResult<Hbps> {
        let mut h = Hbps::new(cfg)?;
        for (aa, score) in scores {
            h.track_new(aa, score)?;
        }
        Ok(h)
    }

    /// This instance's configuration.
    pub fn config(&self) -> HbpsConfig {
        self.cfg
    }

    /// The bin holding `score`. Bin 0 covers `(max - width, max]`; the
    /// last bin additionally covers score 0.
    ///
    /// Scores above `max_score` are outside the configured score space: a
    /// free-count can never exceed the AA size, so an oversized score
    /// means the caller's accounting is broken. Debug builds assert;
    /// release builds clamp into bin 0 (misbinning one AA degrades pick
    /// quality, never correctness). Mutation paths reject such scores via
    /// [`Hbps::try_bin_of`] instead of reaching this clamp.
    #[inline]
    pub fn bin_of(&self, score: AaScore) -> usize {
        debug_assert!(
            score.get() <= self.cfg.max_score,
            "score {} exceeds HBPS max_score {}",
            score.get(),
            self.cfg.max_score
        );
        let s = score.get().min(self.cfg.max_score);
        (((self.cfg.max_score - s) / self.cfg.bin_width()) as usize).min(self.cfg.bins - 1)
    }

    /// Like [`Hbps::bin_of`], but rejects scores outside the configured
    /// score space instead of clamping them into the best bin.
    #[inline]
    pub fn try_bin_of(&self, score: AaScore) -> WaflResult<usize> {
        if score.get() > self.cfg.max_score {
            return Err(WaflError::InvalidConfig {
                reason: format!(
                    "score {} exceeds HBPS max_score {}",
                    score.get(),
                    self.cfg.max_score
                ),
            });
        }
        Ok(
            (((self.cfg.max_score - score.get()) / self.cfg.bin_width()) as usize)
                .min(self.cfg.bins - 1),
        )
    }

    /// Maintenance counters accumulated since construction or the last
    /// [`Hbps::take_stats`] call.
    pub fn stats(&self) -> HbpsStats {
        self.stats
    }

    /// Return and reset the maintenance counters (delta scrape).
    pub fn take_stats(&mut self) -> HbpsStats {
        std::mem::take(&mut self.stats)
    }

    /// Total AAs tracked by the histogram.
    pub fn tracked(&self) -> u64 {
        self.counts.iter().map(|&c| c as u64).sum()
    }

    /// Current list occupancy.
    pub fn list_len(&self) -> usize {
        self.list.len()
    }

    /// Histogram counts per bin (all AAs, listed or not).
    pub fn bin_counts(&self) -> &[u32] {
        &self.counts
    }

    /// Start index of `bin`'s segment in the list.
    fn seg_start(&self, bin: usize) -> usize {
        self.seg_len[..bin].iter().map(|&l| l as usize).sum()
    }

    /// Deepest (worst) bin with list entries, if any.
    fn deepest_listed_bin(&self) -> Option<usize> {
        (0..self.cfg.bins).rev().find(|&b| self.seg_len[b] > 0)
    }

    /// Begin tracking a new AA with the given score (histogram count plus
    /// list insertion if it qualifies). Rejects scores above `max_score`.
    pub fn track_new(&mut self, aa: AaId, score: AaScore) -> WaflResult<()> {
        let bin = self.try_bin_of(score)?;
        self.counts[bin] += 1;
        self.try_insert_listed(aa, bin);
        Ok(())
    }

    /// Apply a score change for `aa`. The caller supplies the old score
    /// (derivable from the bitmap and the CP's delta); the structure
    /// itself stores no per-AA state — that is what keeps it two pages.
    /// Either score above `max_score` is rejected as [`WaflError::InvalidConfig`].
    pub fn on_score_change(&mut self, aa: AaId, old: AaScore, new: AaScore) -> WaflResult<()> {
        let (ob, nb) = (self.try_bin_of(old)?, self.try_bin_of(new)?);
        if ob == nb {
            return Ok(()); // same bin: counts unchanged, in-bin order irrelevant
        }
        self.stats.bin_moves += 1;
        // Saturate rather than assert: a TopAA image written less often
        // than every CP restores counts that lag the bitmaps. Histogram
        // drift degrades pick quality, never allocation correctness (the
        // bitmap is authoritative), and the §3.3.2 replenish scan restores
        // exact counts.
        self.counts[ob] = self.counts[ob].saturating_sub(1);
        self.counts[nb] += 1;
        if self.remove_listed(aa, ob) {
            self.try_insert_listed(aa, nb);
        } else {
            // Not in the list; it may now qualify (freed into a top bin).
            self.try_insert_listed(aa, nb);
        }
        Ok(())
    }

    /// Stop tracking `aa` entirely (e.g. the FlexVol shrank). Rejects
    /// scores above `max_score`.
    pub fn untrack(&mut self, aa: AaId, score: AaScore) -> WaflResult<()> {
        let bin = self.try_bin_of(score)?;
        self.counts[bin] = self.counts[bin].saturating_sub(1);
        self.remove_listed(aa, bin);
        Ok(())
    }

    /// The best available AA: the first list entry, which belongs to the
    /// best listed bin. Returns the AA and the *upper bound* of its bin's
    /// score range. `None` when the list is empty (trigger a replenish).
    pub fn peek_best(&self) -> Option<(AaId, AaScore)> {
        let &aa = self.list.first()?;
        let bin = (0..self.cfg.bins).find(|&b| self.seg_len[b] > 0)?;
        Some((
            aa,
            AaScore(self.cfg.max_score - bin as u32 * self.cfg.bin_width()),
        ))
    }

    /// Remove and return the best AA (the write allocator claiming it for
    /// a CP). Histogram counts are untouched — the AA still has its score
    /// until its blocks are consumed and the CP-boundary update arrives.
    pub fn take_best(&mut self) -> Option<(AaId, AaScore)> {
        let out = self.peek_best()?;
        let bin = (0..self.cfg.bins)
            .find(|&b| self.seg_len[b] > 0)
            .expect("nonempty list has a first bin");
        self.remove_at(0, bin);
        Some(out)
    }

    /// Whether the background replenish scan should run (§3.3.2: "in the
    /// rare case that the write allocator consumes more AAs than are being
    /// inserted due to freeing of blocks, a background scan replenishes
    /// the list"). Two triggers:
    ///
    /// * the list drained below `low_water` while the histogram knows of
    ///   unlisted AAs; or
    /// * *quality degradation*: the best populated bin has no listed
    ///   entries (takes emptied its segment while same-bin score changes
    ///   were rejected against a then-full list), so picks would silently
    ///   come from a worse bin than the error-margin guarantee allows.
    pub fn needs_replenish(&self, low_water: usize) -> bool {
        let unlisted = self.tracked() > self.list.len() as u64;
        if self.list.len() < low_water && unlisted {
            return true;
        }
        // Best populated bin vs best listed bin.
        let best_counted = (0..self.cfg.bins).find(|&b| self.counts[b] > 0);
        let best_listed = (0..self.cfg.bins).find(|&b| self.seg_len[b] > 0);
        match (best_counted, best_listed) {
            (Some(c), Some(l)) => c < l,
            (Some(_), None) => true,
            _ => false,
        }
    }

    /// Rebuild from an authoritative full scan (the background replenish).
    /// Resets both pages. Fails (leaving the structure mid-rebuild but
    /// internally consistent) if a supplied score exceeds `max_score`.
    pub fn replenish(
        &mut self,
        scores: impl IntoIterator<Item = (AaId, AaScore)>,
    ) -> WaflResult<()> {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.seg_len.iter_mut().for_each(|l| *l = 0);
        self.list.clear();
        self.stats.refills += 1;
        for (aa, score) in scores {
            self.track_new(aa, score)?;
        }
        Ok(())
    }

    /// Constant memory: exactly two metafile pages (§3.3.2: "this AA cache
    /// uses exactly two pages of memory"), independent of how many AAs the
    /// histogram tracks.
    pub fn memory_bytes(&self) -> usize {
        2 * BLOCK_SIZE
    }

    // ----- list maintenance -------------------------------------------

    /// Insert `aa` into `bin`'s segment if it qualifies: room in the list,
    /// or better than the deepest listed bin (whose boundary entry is then
    /// evicted).
    fn try_insert_listed(&mut self, aa: AaId, bin: usize) {
        if self.list.len() >= self.cfg.list_capacity {
            match self.deepest_listed_bin() {
                Some(deepest) if bin < deepest => {
                    // Evict the last entry (end of the deepest segment).
                    self.list.pop();
                    self.seg_len[deepest] -= 1;
                    self.stats.list_evictions += 1;
                }
                _ => return, // not better than anything listed
            }
        }
        // Open a hole at the end of the list, then walk it up to the end
        // of `bin`'s segment by moving one boundary element per deeper
        // nonempty segment.
        self.list.push(aa); // placeholder; will be overwritten unless hole stays last
        let mut hole = self.list.len() - 1;
        for b in (bin + 1..self.cfg.bins).rev() {
            if self.seg_len[b] == 0 {
                continue;
            }
            let start = self.seg_start(b);
            if start == hole {
                continue;
            }
            self.list[hole] = self.list[start];
            hole = start;
            self.stats.boundary_rotations += 1;
        }
        self.list[hole] = aa;
        self.seg_len[bin] += 1;
        self.stats.list_inserts += 1;
    }

    /// Remove `aa` from `bin`'s segment if present. Returns whether it was.
    fn remove_listed(&mut self, aa: AaId, bin: usize) -> bool {
        if self.seg_len[bin] == 0 {
            return false;
        }
        let start = self.seg_start(bin);
        let end = start + self.seg_len[bin] as usize;
        let Some(idx) = self.list[start..end].iter().position(|&e| e == aa) else {
            return false;
        };
        self.remove_at(start + idx, bin);
        true
    }

    /// Remove the entry at `idx` inside `bin`'s segment, closing the gap
    /// with one boundary move per deeper nonempty segment.
    fn remove_at(&mut self, idx: usize, bin: usize) {
        let start = self.seg_start(bin);
        let end = start + self.seg_len[bin] as usize;
        debug_assert!((start..end).contains(&idx));
        // Move the segment's last element into the vacated slot; the hole
        // is now at the segment boundary (end - 1).
        self.list[idx] = self.list[end - 1];
        let mut hole = end - 1;
        // Walk the hole to the end of the list: each deeper nonempty
        // segment donates its *last* element into the hole just before its
        // start, shifting the segment's footprint left by one.
        let mut next_seg_start = end;
        for b in bin + 1..self.cfg.bins {
            let l = self.seg_len[b] as usize;
            if l == 0 {
                continue;
            }
            let last = next_seg_start + l - 1;
            self.list[hole] = self.list[last];
            hole = last;
            next_seg_start = last + 1;
            self.stats.boundary_rotations += 1;
        }
        debug_assert_eq!(hole, self.list.len() - 1);
        self.list.pop();
        self.seg_len[bin] -= 1;
    }

    // ----- persistence (§3.4: the RAID-agnostic TopAA metafile embeds
    // these two pages directly) ----------------------------------------

    /// Serialize into the two exact 4 KiB block images stored in the
    /// TopAA metafile, each sealed with a trailing CRC64 (a deviation
    /// from the paper's raw pages; see `docs/recovery.md`).
    pub fn to_pages(&self) -> ([u8; BLOCK_SIZE], [u8; BLOCK_SIZE]) {
        let mut hist = [0u8; BLOCK_SIZE];
        {
            let mut w = &mut hist[..];
            w.put_u32_le(MAGIC);
            w.put_u32_le(VERSION);
            w.put_u32_le(self.cfg.max_score);
            w.put_u32_le(self.cfg.bins as u32);
            w.put_u32_le(self.cfg.list_capacity as u32);
            w.put_u32_le(self.list.len() as u32);
            for b in 0..self.cfg.bins {
                w.put_u32_le(self.counts[b]);
                w.put_u32_le(self.seg_len[b]);
            }
        }
        crc64::seal_page(&mut hist);
        let mut list = [0u8; BLOCK_SIZE];
        {
            let mut w = &mut list[..];
            for &aa in &self.list {
                w.put_u32_le(aa.get());
            }
        }
        crc64::seal_page(&mut list);
        (hist, list)
    }

    /// Deserialize from the two TopAA block images, checking each page's
    /// CRC and then validating every structural invariant (a damaged
    /// metafile must fail loudly and fall back to the bitmap walk, per
    /// §3.4's corruption discussion).
    pub fn from_pages(hist: &[u8; BLOCK_SIZE], list: &[u8; BLOCK_SIZE]) -> WaflResult<Hbps> {
        let corrupt = |reason: String| WaflError::CorruptMetafile { reason };
        if !crc64::verify_page(hist) {
            return Err(corrupt("HBPS histogram page CRC mismatch".into()));
        }
        if !crc64::verify_page(list) {
            return Err(corrupt("HBPS list page CRC mismatch".into()));
        }
        let mut r = &hist[..];
        if r.get_u32_le() != MAGIC {
            return Err(corrupt("bad HBPS magic".into()));
        }
        if r.get_u32_le() != VERSION {
            return Err(corrupt("unsupported HBPS version".into()));
        }
        let cfg = HbpsConfig {
            max_score: r.get_u32_le(),
            bins: r.get_u32_le() as usize,
            list_capacity: r.get_u32_le() as usize,
        };
        cfg.validate()
            .map_err(|e| corrupt(format!("bad HBPS config: {e}")))?;
        let list_len = r.get_u32_le() as usize;
        if list_len > cfg.list_capacity {
            return Err(corrupt(format!(
                "list length {list_len} exceeds capacity {}",
                cfg.list_capacity
            )));
        }
        let mut h = Hbps::new(cfg)?;
        for b in 0..cfg.bins {
            h.counts[b] = r.get_u32_le();
            h.seg_len[b] = r.get_u32_le();
            if h.seg_len[b] > h.counts[b] {
                return Err(corrupt(format!(
                    "bin {b} lists {} entries but counts {}",
                    h.seg_len[b], h.counts[b]
                )));
            }
        }
        let seg_total: usize = h.seg_len.iter().map(|&l| l as usize).sum();
        if seg_total != list_len {
            return Err(corrupt(format!(
                "segment lengths sum to {seg_total}, header says {list_len}"
            )));
        }
        let mut r = &list[..];
        for _ in 0..list_len {
            h.list.push(AaId(r.get_u32_le()));
        }
        Ok(h)
    }

    #[cfg(test)]
    pub(crate) fn assert_invariants(&self) {
        assert!(self.list.len() <= self.cfg.list_capacity);
        let seg_total: usize = self.seg_len.iter().map(|&l| l as usize).sum();
        assert_eq!(seg_total, self.list.len(), "segments must tile the list");
        for b in 0..self.cfg.bins {
            assert!(
                self.seg_len[b] <= self.counts[b],
                "bin {b}: listed {} > counted {}",
                self.seg_len[b],
                self.counts[b]
            );
        }
        // No duplicate AAs in the list.
        let mut seen: Vec<u32> = self.list.iter().map(|a| a.get()).collect();
        seen.sort_unstable();
        let before = seen.len();
        seen.dedup();
        assert_eq!(before, seen.len(), "duplicate AA in list");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> HbpsConfig {
        HbpsConfig {
            max_score: 320,
            bins: 32,
            list_capacity: 10,
        }
    }

    #[test]
    fn config_validation() {
        assert!(HbpsConfig::default().validate().is_ok());
        assert!(HbpsConfig {
            max_score: 0,
            ..small_cfg()
        }
        .validate()
        .is_err());
        assert!(HbpsConfig {
            bins: 0,
            ..small_cfg()
        }
        .validate()
        .is_err());
        assert!(HbpsConfig {
            max_score: 33,
            bins: 32,
            list_capacity: 10
        }
        .validate()
        .is_err());
        assert!(HbpsConfig {
            list_capacity: 2000,
            ..HbpsConfig::default()
        }
        .validate()
        .is_err());
        assert!((HbpsConfig::default().error_margin() - 0.03125).abs() < 1e-12);
    }

    #[test]
    fn bin_mapping_matches_paper_ranges() {
        let h = Hbps::new(HbpsConfig::default()).unwrap();
        // "The first bin tracks AAs with scores in 31K-32K, the second in
        // 30K-31K, and so on."
        assert_eq!(h.bin_of(AaScore(32 * 1024)), 0);
        assert_eq!(h.bin_of(AaScore(31 * 1024 + 1)), 0);
        assert_eq!(h.bin_of(AaScore(31 * 1024)), 1);
        assert_eq!(h.bin_of(AaScore(30 * 1024 + 1)), 1);
        assert_eq!(h.bin_of(AaScore(1)), 31);
        assert_eq!(h.bin_of(AaScore(0)), 31);
        // Scores above max are outside the score space: the checked
        // mapping and every mutation path reject them.
        assert!(matches!(
            h.try_bin_of(AaScore(32 * 1024 + 1)),
            Err(WaflError::InvalidConfig { .. })
        ));
        assert!(h.try_bin_of(AaScore(u32::MAX)).is_err());
    }

    #[test]
    fn oversized_scores_are_rejected_by_mutation_paths() {
        let mut h = Hbps::new(small_cfg()).unwrap();
        let too_big = AaScore(321);
        assert!(h.track_new(AaId(1), too_big).is_err());
        assert_eq!(h.tracked(), 0, "failed track must not count");
        h.track_new(AaId(1), AaScore(320)).unwrap();
        assert!(h.on_score_change(AaId(1), AaScore(320), too_big).is_err());
        assert!(h.on_score_change(AaId(1), too_big, AaScore(320)).is_err());
        assert!(h.untrack(AaId(1), too_big).is_err());
        assert_eq!(h.tracked(), 1, "failed mutations must not disturb state");
        assert!(Hbps::build(small_cfg(), [(AaId(9), too_big)]).is_err());
        assert!(h.replenish([(AaId(9), too_big)]).is_err());
        h.assert_invariants();
    }

    #[test]
    fn bin_edges_map_per_paper_ranges() {
        // Width 10 over 0..=320: bin 0 = (310, 320], bin 1 = (300, 310],
        // ..., bin 31 = [0, 10].
        let h = Hbps::new(small_cfg()).unwrap();
        let w = h.config().bin_width();
        assert_eq!(w, 10);
        assert_eq!(h.bin_of(AaScore(320)), 0); // exactly max_score
        assert_eq!(h.bin_of(AaScore(311)), 0); // lower edge of bin 0 + 1
        assert_eq!(h.bin_of(AaScore(310)), 1); // exactly max_score - width
        assert_eq!(h.bin_of(AaScore(309)), 1); // one below the edge
        assert_eq!(h.bin_of(AaScore(301)), 1);
        assert_eq!(h.bin_of(AaScore(300)), 2);
        assert_eq!(h.bin_of(AaScore(10)), 31);
        assert_eq!(h.bin_of(AaScore(1)), 31);
        assert_eq!(h.bin_of(AaScore(0)), 31); // zero shares the last bin
        for s in [0u32, 1, 9, 10, 11, 309, 310, 311, 320] {
            assert_eq!(h.try_bin_of(AaScore(s)).unwrap(), h.bin_of(AaScore(s)));
        }
    }

    #[test]
    fn best_bin_query_bound_at_edges() {
        let mut h = Hbps::new(small_cfg()).unwrap();
        // A score exactly at max_score reports the bin-0 upper bound.
        h.track_new(AaId(1), AaScore(320)).unwrap();
        assert_eq!(h.peek_best().unwrap(), (AaId(1), AaScore(320)));
        h.take_best().unwrap();
        // A score exactly at max_score - width sits in bin 1, whose upper
        // bound is max_score - width: the reported bound never overstates
        // by more than one bin width.
        h.track_new(AaId(2), AaScore(310)).unwrap();
        let (aa, bound) = h.peek_best().unwrap();
        assert_eq!((aa, bound), (AaId(2), AaScore(310)));
        h.take_best().unwrap();
        // Score 0 lands in the worst bin; its reported bound is that
        // bin's upper edge (one width), not zero.
        h.track_new(AaId(3), AaScore(0)).unwrap();
        assert_eq!(h.peek_best().unwrap(), (AaId(3), AaScore(10)));
        h.assert_invariants();
    }

    #[test]
    fn boundary_rotation_at_bin_edges() {
        let mut h = Hbps::new(small_cfg()).unwrap();
        // Populate three adjacent segments via edge scores.
        h.track_new(AaId(0), AaScore(320)).unwrap(); // bin 0
        h.track_new(AaId(1), AaScore(310)).unwrap(); // bin 1
        h.track_new(AaId(2), AaScore(309)).unwrap(); // bin 1
        h.track_new(AaId(3), AaScore(300)).unwrap(); // bin 2
        h.assert_invariants();
        let before = h.stats();
        // Crossing a single edge (309 -> 311) moves the AA from bin 1 to
        // bin 0: one bin move, and the insert rotates one boundary element
        // per deeper nonempty segment it passes.
        h.on_score_change(AaId(2), AaScore(309), AaScore(311))
            .unwrap();
        let after = h.stats();
        assert_eq!(after.bin_moves - before.bin_moves, 1);
        assert!(after.boundary_rotations > before.boundary_rotations);
        h.assert_invariants();
        // Same-bin edge movement (311 -> 320 within bin 0) is a no-op.
        let before = h.stats();
        h.on_score_change(AaId(2), AaScore(311), AaScore(320))
            .unwrap();
        assert_eq!(h.stats(), before);
        // Drain in bin order: the rotated structure still yields bin 0
        // entries first.
        let order: Vec<AaId> = std::iter::from_fn(|| h.take_best().map(|(aa, _)| aa)).collect();
        assert_eq!(order.len(), 4);
        assert!(order[..2].contains(&AaId(0)) && order[..2].contains(&AaId(2)));
        assert_eq!(order[2], AaId(1));
        assert_eq!(order[3], AaId(3));
        h.assert_invariants();
    }

    #[test]
    fn stats_track_maintenance_and_reset() {
        let mut h = Hbps::new(small_cfg()).unwrap();
        for i in 0..12 {
            h.track_new(AaId(i), AaScore(100 + i.min(5))).unwrap();
        }
        h.on_score_change(AaId(0), AaScore(100), AaScore(319))
            .unwrap();
        h.replenish((0..12).map(|i| (AaId(i), AaScore(100))))
            .unwrap();
        let s = h.take_stats();
        assert!(s.list_inserts >= 10);
        assert!(s.list_evictions >= 1, "insert into a full list evicts");
        assert_eq!(s.bin_moves, 1);
        assert_eq!(s.refills, 1);
        assert_eq!(h.take_stats(), HbpsStats::default(), "take resets");
    }

    #[test]
    fn best_comes_from_best_bin() {
        let mut h = Hbps::new(small_cfg()).unwrap();
        h.track_new(AaId(1), AaScore(50)).unwrap();
        h.track_new(AaId(2), AaScore(315)).unwrap(); // bin 0
        h.track_new(AaId(3), AaScore(200)).unwrap();
        let (aa, bound) = h.peek_best().unwrap();
        assert_eq!(aa, AaId(2));
        assert_eq!(bound, AaScore(320));
        h.assert_invariants();
    }

    #[test]
    fn take_best_drains_in_bin_order() {
        let mut h = Hbps::new(small_cfg()).unwrap();
        h.track_new(AaId(1), AaScore(5)).unwrap(); // worst bin
        h.track_new(AaId(2), AaScore(315)).unwrap(); // bin 0
        h.track_new(AaId(3), AaScore(305)).unwrap(); // bin 1 (301..=310)
        let first = h.take_best().unwrap().0;
        assert_eq!(first, AaId(2));
        let second = h.take_best().unwrap().0;
        assert_eq!(second, AaId(3));
        let third = h.take_best().unwrap().0;
        assert_eq!(third, AaId(1));
        assert!(h.take_best().is_none());
        // Counts were never touched by take.
        assert_eq!(h.tracked(), 3);
        h.assert_invariants();
    }

    #[test]
    fn eviction_keeps_only_best_when_full() {
        let mut h = Hbps::new(small_cfg()).unwrap();
        // 10-entry capacity; insert 20 mediocre then 10 great AAs.
        for i in 0..20 {
            h.track_new(AaId(i), AaScore(100)).unwrap(); // bin 21
        }
        assert_eq!(h.list_len(), 10);
        for i in 20..30 {
            h.track_new(AaId(i), AaScore(315)).unwrap(); // bin 0 evicts mediocre
        }
        h.assert_invariants();
        assert_eq!(h.list_len(), 10);
        assert_eq!(h.tracked(), 30);
        // All ten listed entries are now the great ones.
        for _ in 0..10 {
            let (aa, bound) = h.take_best().unwrap();
            assert!(aa.get() >= 20, "expected a bin-0 AA, got {aa}");
            assert_eq!(bound, AaScore(320));
        }
    }

    #[test]
    fn score_change_moves_between_bins() {
        let mut h = Hbps::new(small_cfg()).unwrap();
        h.track_new(AaId(1), AaScore(100)).unwrap();
        h.track_new(AaId(2), AaScore(200)).unwrap();
        // AA 1 gets lots of frees: moves to bin 0.
        h.on_score_change(AaId(1), AaScore(100), AaScore(320))
            .unwrap();
        assert_eq!(h.peek_best().unwrap().0, AaId(1));
        // AA 1 gets consumed: drops to the worst bin.
        h.on_score_change(AaId(1), AaScore(320), AaScore(0))
            .unwrap();
        assert_eq!(h.peek_best().unwrap().0, AaId(2));
        h.assert_invariants();
        // Same-bin movement is a no-op (bin width 10: 200 and 199 share
        // the (190, 200] bin).
        let counts_before = h.bin_counts().to_vec();
        h.on_score_change(AaId(2), AaScore(200), AaScore(199))
            .unwrap();
        assert_eq!(h.bin_counts(), &counts_before[..]);
    }

    #[test]
    fn unlisted_aa_joins_list_when_freed_into_top_bins() {
        let mut h = Hbps::new(small_cfg()).unwrap();
        for i in 0..10 {
            h.track_new(AaId(i), AaScore(250)).unwrap();
        }
        // AA 100 starts poor and unlisted (list is full of 250s).
        h.track_new(AaId(100), AaScore(10)).unwrap();
        assert_eq!(h.list_len(), 10);
        // Frees push it into bin 0: it must displace a 250.
        h.on_score_change(AaId(100), AaScore(10), AaScore(319))
            .unwrap();
        assert_eq!(h.peek_best().unwrap().0, AaId(100));
        h.assert_invariants();
    }

    #[test]
    fn needs_replenish_when_list_drains() {
        let mut h = Hbps::new(small_cfg()).unwrap();
        for i in 0..5 {
            h.track_new(AaId(i), AaScore(300)).unwrap();
        }
        assert!(!h.needs_replenish(3));
        h.take_best();
        h.take_best();
        h.take_best();
        assert!(h.needs_replenish(3));
        // Replenish from a fresh scan restores the full picture.
        h.replenish((0..5).map(|i| (AaId(i), AaScore(300))))
            .unwrap();
        assert_eq!(h.list_len(), 5);
        assert!(!h.needs_replenish(3));
        h.assert_invariants();
    }

    #[test]
    fn round_trip_through_pages() {
        let mut h = Hbps::new(HbpsConfig::default()).unwrap();
        for i in 0..5000u32 {
            h.track_new(AaId(i), AaScore((i * 7) % 32769)).unwrap();
        }
        let (p1, p2) = h.to_pages();
        let h2 = Hbps::from_pages(&p1, &p2).unwrap();
        assert_eq!(h.bin_counts(), h2.bin_counts());
        assert_eq!(h.list, h2.list);
        assert_eq!(h.seg_len, h2.seg_len);
        assert_eq!(h.config(), h2.config());
        h2.assert_invariants();
    }

    #[test]
    fn corrupt_pages_fail_loudly() {
        let h = Hbps::build(
            HbpsConfig::default(),
            (0..100u32).map(|i| (AaId(i), AaScore(i * 300))),
        )
        .unwrap();
        let (mut p1, p2) = h.to_pages();
        p1[0] ^= 0xff; // break the magic
        assert!(matches!(
            Hbps::from_pages(&p1, &p2),
            Err(WaflError::CorruptMetafile { .. })
        ));
        let (mut p1, p2) = h.to_pages();
        p1[20] = 0xff; // absurd list length
        p1[21] = 0xff;
        assert!(Hbps::from_pages(&p1, &p2).is_err());
    }

    #[test]
    fn memory_is_two_pages_regardless_of_scale() {
        let small = Hbps::build(
            HbpsConfig::default(),
            (0..10u32).map(|i| (AaId(i), AaScore(100))),
        )
        .unwrap();
        let large = Hbps::build(
            HbpsConfig::default(),
            (0..1_000_000u32).map(|i| (AaId(i), AaScore(i % 32769))),
        )
        .unwrap();
        assert_eq!(small.memory_bytes(), 2 * 4096);
        assert_eq!(large.memory_bytes(), 2 * 4096);
        assert_eq!(large.tracked(), 1_000_000);
    }

    #[test]
    fn untrack_removes_everywhere() {
        let mut h = Hbps::new(small_cfg()).unwrap();
        h.track_new(AaId(1), AaScore(300)).unwrap();
        h.track_new(AaId(2), AaScore(100)).unwrap();
        h.untrack(AaId(1), AaScore(300)).unwrap();
        assert_eq!(h.tracked(), 1);
        assert_eq!(h.peek_best().unwrap().0, AaId(2));
        h.assert_invariants();
    }
}
