//! The RAID-agnostic AA cache: an [`Hbps`] bound to a topology and a
//! bitmap (§3.3.2).

use crate::batch::ScoreDeltaBatch;
use crate::hbps::{Hbps, HbpsConfig, HbpsStats};
use crate::topology::AaTopology;
use wafl_bitmap::Bitmap;
use wafl_types::{AaId, AaScore, ScoreDelta, WaflError, WaflResult, BLOCK_SIZE};

/// Statistics describing the quality of AA picks — the §4.1.2 measurement
/// ("average free space available in the chosen AAs").
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PickStats {
    /// AAs handed to the write allocator.
    pub picks: u64,
    /// Sum of the picked AAs' exact scores at pick time.
    pub score_sum: u64,
    /// Background replenish scans performed.
    pub replenish_scans: u64,
}

impl PickStats {
    /// Mean free fraction of the picked AAs given the per-AA block count.
    pub fn mean_free_fraction(&self, aa_blocks: u32) -> f64 {
        if self.picks == 0 || aa_blocks == 0 {
            0.0
        } else {
            self.score_sum as f64 / (self.picks as f64 * aa_blocks as f64)
        }
    }
}

/// The RAID-agnostic allocation-area cache for one FlexVol or natively
/// redundant physical range.
///
/// Two pages of state (the embedded HBPS), regardless of volume size
/// (§3.3.2: "a finite amount of memory even when tracking millions of
/// AAs"). Score truth lives in the bitmap; this cache only indexes it.
pub struct RaidAgnosticCache {
    hbps: Hbps,
    topology: AaTopology,
    /// Replenish trigger: scan when the list drains below this.
    low_water: usize,
    stats: PickStats,
}

impl RaidAgnosticCache {
    /// Default list low-water mark before a replenish scan is requested.
    pub const DEFAULT_LOW_WATER: usize = 16;

    /// Build by scanning the bitmap — the expensive cold-mount path the
    /// TopAA metafile exists to avoid (§3.4).
    pub fn build(topology: AaTopology, bitmap: &Bitmap) -> WaflResult<RaidAgnosticCache> {
        if topology.is_raid_aware() {
            return Err(WaflError::InvalidConfig {
                reason: "RaidAgnosticCache needs a RAID-agnostic topology".into(),
            });
        }
        let cfg = HbpsConfig {
            max_score: topology.max_score(),
            ..HbpsConfig::default()
        };
        let hbps = Hbps::build(cfg, topology.all_scores(bitmap))?;
        Ok(RaidAgnosticCache {
            hbps,
            topology,
            low_water: Self::DEFAULT_LOW_WATER,
            stats: PickStats::default(),
        })
    }

    /// Restore from the two TopAA metafile blocks — the fast mount path.
    /// The HBPS pages are embedded verbatim in the metafile (§3.4), so
    /// this is pure deserialization: no bitmap I/O.
    pub fn from_topaa(
        topology: AaTopology,
        hist: &[u8; BLOCK_SIZE],
        list: &[u8; BLOCK_SIZE],
    ) -> WaflResult<RaidAgnosticCache> {
        let hbps = Hbps::from_pages(hist, list)?;
        if hbps.config().max_score != topology.max_score() {
            return Err(WaflError::CorruptMetafile {
                reason: format!(
                    "TopAA max score {} does not match topology {}",
                    hbps.config().max_score,
                    topology.max_score()
                ),
            });
        }
        Ok(RaidAgnosticCache {
            hbps,
            topology,
            low_water: Self::DEFAULT_LOW_WATER,
            stats: PickStats::default(),
        })
    }

    /// The two TopAA metafile blocks to persist at CP time.
    pub fn to_topaa(&self) -> ([u8; BLOCK_SIZE], [u8; BLOCK_SIZE]) {
        self.hbps.to_pages()
    }

    /// Claim the best AA for writing. The returned score is the exact
    /// current score (read from the bitmap's per-AA summary counter when
    /// one is enabled — O(1) — and otherwise one summary-accelerated
    /// range count). `None` when the cache is empty; callers should then
    /// replenish and retry.
    pub fn pick_best(&mut self, bitmap: &Bitmap) -> Option<(AaId, AaScore)> {
        let (aa, _bound) = self.hbps.take_best()?;
        let exact = self.topology.score_from_bitmap(bitmap, aa);
        self.stats.picks += 1;
        self.stats.score_sum += exact.get() as u64;
        Some((aa, exact))
    }

    /// Apply one CP's batched deltas (§3.3: "updates to the HBPS get
    /// efficiently batched at the CP boundary"). The bitmap must already
    /// reflect the CP's allocations and frees; each touched AA reads its
    /// new score from the free-count summary (O(1) with the per-AA
    /// counters volumes enable), and the old score is reconstructed from
    /// the delta — no per-AA score array exists.
    pub fn apply_cp_batch(
        &mut self,
        batch: &mut ScoreDeltaBatch,
        bitmap: &Bitmap,
    ) -> WaflResult<()> {
        for (aa, delta) in batch.drain() {
            let new = self.topology.score_from_bitmap(bitmap, aa);
            let max = self.topology.aa_blocks(aa) as u32;
            let old = new.apply(ScoreDelta(-delta.0), max);
            self.hbps.on_score_change(aa, old, new)?;
        }
        Ok(())
    }

    /// Replenish the list from a full scan if it has drained (§3.3.2's
    /// background scan). Returns `true` if a scan ran — the caller charges
    /// its cost (`bitmap.page_count()` page reads; the in-memory rescan
    /// itself is a summary-counter copy, not a popcount walk).
    pub fn maybe_replenish(&mut self, bitmap: &Bitmap) -> WaflResult<bool> {
        if !self.hbps.needs_replenish(self.low_water) {
            return Ok(false);
        }
        self.hbps.replenish(self.topology.all_scores(bitmap))?;
        self.stats.replenish_scans += 1;
        Ok(true)
    }

    /// Pick-quality statistics.
    pub fn stats(&self) -> PickStats {
        self.stats
    }

    /// Reset statistics (after aging, before measurement).
    pub fn reset_stats(&mut self) {
        self.stats = PickStats::default();
    }

    /// Memory footprint: two pages, always.
    pub fn memory_bytes(&self) -> usize {
        self.hbps.memory_bytes()
    }

    /// The underlying topology.
    pub fn topology(&self) -> &AaTopology {
        &self.topology
    }

    /// Access to the embedded HBPS (read-only; for diagnostics/benches).
    pub fn hbps(&self) -> &Hbps {
        &self.hbps
    }

    /// Return and reset the embedded HBPS's maintenance counters (delta
    /// scrape for an external metrics registry).
    pub fn take_hbps_stats(&mut self) -> HbpsStats {
        self.hbps.take_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wafl_types::{AaSizingPolicy, Vbn};

    fn topo(space: u64) -> AaTopology {
        AaTopology::raid_agnostic(space, AaSizingPolicy::ConsecutiveVbns { blocks: 1024 }).unwrap()
    }

    #[test]
    fn build_rejects_raid_aware_topology() {
        let g =
            wafl_raid::RaidGeometry::new(wafl_types::RaidGroupId(0), 3, 1, 4096, Vbn(0)).unwrap();
        let t = AaTopology::raid_aware(g, AaSizingPolicy::Stripes { stripes: 1024 }).unwrap();
        let b = Bitmap::new(3 * 4096);
        assert!(RaidAgnosticCache::build(t, &b).is_err());
    }

    #[test]
    fn picks_prefer_empty_aas() {
        let t = topo(16 * 1024);
        let mut bitmap = Bitmap::new(16 * 1024);
        // Fill AAs 0..8 completely; leave 8..16 empty.
        for v in 0..8 * 1024u64 {
            bitmap.allocate(Vbn(v)).unwrap();
        }
        let mut cache = RaidAgnosticCache::build(t, &bitmap).unwrap();
        let (aa, score) = cache.pick_best(&bitmap).unwrap();
        assert!(aa.get() >= 8, "picked a full AA {aa}");
        assert_eq!(score, AaScore(1024));
        assert_eq!(cache.stats().picks, 1);
        assert_eq!(cache.stats().mean_free_fraction(1024), 1.0);
    }

    #[test]
    fn cp_batch_updates_rankings() {
        let t = topo(4 * 1024);
        let mut bitmap = Bitmap::new(4 * 1024);
        let mut cache = RaidAgnosticCache::build(t, &bitmap).unwrap();
        // CP: consume all of AA 0 and most of AA 1.
        let mut batch = ScoreDeltaBatch::new();
        for v in 0..1024u64 {
            bitmap.allocate(Vbn(v)).unwrap();
        }
        batch.record_allocated(AaId(0), 1024);
        for v in 1024..2000u64 {
            bitmap.allocate(Vbn(v)).unwrap();
        }
        batch.record_allocated(AaId(1), 2000 - 1024);
        cache.apply_cp_batch(&mut batch, &bitmap).unwrap();
        // Best picks now come from AAs 2 and 3 only.
        let (a, s) = cache.pick_best(&bitmap).unwrap();
        assert!(a.get() >= 2);
        assert_eq!(s, AaScore(1024));
        let (b, _) = cache.pick_best(&bitmap).unwrap();
        assert!(b.get() >= 2 && b != a);
    }

    #[test]
    fn replenish_refills_a_drained_list() {
        let t = topo(64 * 1024); // 64 AAs
        let bitmap = Bitmap::new(64 * 1024);
        let mut cache = RaidAgnosticCache::build(t, &bitmap).unwrap();
        // Drain everything the list holds.
        while cache.pick_best(&bitmap).is_some() {}
        assert!(cache.maybe_replenish(&bitmap).unwrap());
        assert!(cache.pick_best(&bitmap).is_some());
        assert_eq!(cache.stats().replenish_scans, 1);
        // A full list does not replenish again.
        assert!(!cache.maybe_replenish(&bitmap).unwrap());
    }

    #[test]
    fn topaa_round_trip_preserves_picks() {
        let t = topo(32 * 1024);
        let mut bitmap = Bitmap::new(32 * 1024);
        for v in 0..5 * 1024u64 {
            bitmap.allocate(Vbn(v)).unwrap();
        }
        let cache = RaidAgnosticCache::build(t, &bitmap).unwrap();
        let (p1, p2) = cache.to_topaa();
        let mut restored = RaidAgnosticCache::from_topaa(topo(32 * 1024), &p1, &p2).unwrap();
        let (aa, score) = restored.pick_best(&bitmap).unwrap();
        assert!(aa.get() >= 5);
        assert_eq!(score, AaScore(1024));
        assert_eq!(restored.memory_bytes(), 2 * 4096);
    }

    #[test]
    fn topaa_mismatched_topology_rejected() {
        let t = topo(32 * 1024);
        let bitmap = Bitmap::new(32 * 1024);
        let cache = RaidAgnosticCache::build(t, &bitmap).unwrap();
        let (p1, p2) = cache.to_topaa();
        let other =
            AaTopology::raid_agnostic(32 * 1024, AaSizingPolicy::ConsecutiveVbns { blocks: 2048 })
                .unwrap();
        assert!(RaidAgnosticCache::from_topaa(other, &p1, &p2).is_err());
    }

    #[test]
    fn pick_error_margin_holds() {
        // Whatever the score distribution, a pick is within one bin width
        // of the true best (the 3.125 % guarantee, scaled to this config).
        let t = topo(128 * 1024);
        let mut bitmap = Bitmap::new(128 * 1024);
        // Engineer varied scores.
        for aa in 0..128u64 {
            let used = (aa * 13) % 1000;
            for v in 0..used {
                bitmap.allocate(Vbn(aa * 1024 + v)).unwrap();
            }
        }
        let mut cache = RaidAgnosticCache::build(t, &bitmap).unwrap();
        let true_best = (0..128u64)
            .map(|aa| bitmap.free_count_range(Vbn(aa * 1024), 1024))
            .max()
            .unwrap();
        let (_, picked) = cache.pick_best(&bitmap).unwrap();
        let bin_width = 1024 / 32;
        assert!(
            picked.get() + bin_width >= true_best,
            "picked {picked} vs best {true_best}"
        );
    }
}
