//! Allocation areas and AA caches — the contribution of "Efficient Search
//! for Free Blocks in the WAFL File System" (ICPP 2018).
//!
//! WAFL defines fixed-size regions of each block-number space, called
//! *allocation areas* (AAs), scores each by its free-block count, and
//! always directs the write allocator to the emptiest region (§3). This
//! crate implements that machinery:
//!
//! * [`AaTopology`] — how AAs tile a block-number space: consecutive
//!   stripes across a RAID group (RAID-aware, §3.1 Figure 2/3) or
//!   consecutive VBNs (RAID-agnostic, used for FlexVols and natively
//!   redundant storage). Built from the §3.2 sizing policies in
//!   `wafl-types`.
//! * [`RaidAwareCache`] — an indexed max-heap over *all* AAs of a RAID
//!   group (§3.3.1), with batched CP-boundary score updates and a
//!   fragmentation back-off threshold.
//! * [`Hbps`] — the novel *histogram-based partial sort* (§3.3.2): a 4 KiB
//!   histogram page of 1 Ki-wide score bins plus a 4 KiB list page of up
//!   to 1,000 AAs from the best bins, unsorted within a bin. Constant
//!   memory, O(bins) updates, best-score error ≤ 3.125 %.
//! * [`RaidAgnosticCache`] — the HBPS wrapped with replenish-scan plumbing
//!   (§3.3.2's "background scan replenishes the list").
//! * [`topaa`] — the TopAA metafile (§3.4): exact 4 KiB block images that
//!   persist each cache across unmounts so the first CP after boot does
//!   not wait for a full bitmap walk.
//! * [`ScoreDeltaBatch`] — the CP-boundary batching of score increments
//!   (frees) and decrements (allocations).

#![warn(missing_docs)]

mod batch;
mod hbps;
mod heap_cache;
mod raid_agnostic;
pub mod topaa;
mod topology;

pub use batch::ScoreDeltaBatch;
pub use hbps::{Hbps, HbpsConfig, HbpsStats};
pub use heap_cache::{HeapCacheStats, RaidAwareCache};
pub use raid_agnostic::RaidAgnosticCache;
pub use topology::AaTopology;
