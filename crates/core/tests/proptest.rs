//! Property-based tests for the AA caches against shadow models.

use proptest::prelude::*;
use std::collections::HashMap;
use wafl_core::{topaa, Hbps, HbpsConfig, RaidAwareCache, ScoreDeltaBatch};
use wafl_types::{AaId, AaScore};

// ---------------------------------------------------------------------
// RAID-aware max-heap vs a naive shadow map
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum HeapOp {
    Delta(u32, i32),
    TakeBestAndReinsert,
}

fn heap_op(n: u32) -> impl Strategy<Value = HeapOp> {
    prop_oneof![
        (0..n, -500i32..500).prop_map(|(aa, d)| HeapOp::Delta(aa, d)),
        Just(HeapOp::TakeBestAndReinsert),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn heap_matches_shadow(
        init in proptest::collection::vec(0u32..=1000, 50..200),
        ops in proptest::collection::vec(heap_op(50), 1..200),
    ) {
        let n = init.len().min(50);
        let init = &init[..n];
        let max = 1000u32;
        let mut cache = RaidAwareCache::new_full(
            init.iter().map(|&s| AaScore(s)).collect(),
            vec![max; n],
        ).unwrap();
        let mut shadow: Vec<u32> = init.to_vec();
        for op in ops {
            match op {
                HeapOp::Delta(aa, d) => {
                    let aa = aa % n as u32;
                    let mut batch = ScoreDeltaBatch::new();
                    if d >= 0 {
                        batch.record_freed(AaId(aa), d as u32);
                        shadow[aa as usize] = (shadow[aa as usize] + d as u32).min(max);
                    } else {
                        batch.record_allocated(AaId(aa), (-d) as u32);
                        shadow[aa as usize] =
                            shadow[aa as usize].saturating_sub((-d) as u32);
                    }
                    cache.apply_batch(&mut batch);
                }
                HeapOp::TakeBestAndReinsert => {
                    let (aa, score) = cache.take_best().unwrap();
                    prop_assert_eq!(score.get(), shadow[aa.index()]);
                    cache.insert(aa, score).unwrap();
                }
            }
            // The heap's best always carries the max shadow score.
            let best = cache.best().unwrap();
            let max_shadow = shadow.iter().copied().max().unwrap();
            prop_assert_eq!(best.1.get(), max_shadow);
        }
        // Every score agrees.
        for (i, &s) in shadow.iter().enumerate() {
            prop_assert_eq!(cache.score_of(AaId(i as u32)).get(), s);
        }
    }

    #[test]
    fn top_k_is_truly_the_top(
        scores in proptest::collection::vec(0u32..=5000, 1..600),
        k in 1usize..700,
    ) {
        let n = scores.len();
        let cache = RaidAwareCache::new_full(
            scores.iter().map(|&s| AaScore(s)).collect(),
            vec![5000; n],
        ).unwrap();
        let top = cache.top_k(k);
        prop_assert_eq!(top.len(), k.min(n));
        // Descending, and no excluded AA beats an included one.
        prop_assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
        if let Some(&(_, cutoff)) = top.last() {
            let included: std::collections::HashSet<u32> =
                top.iter().map(|&(aa, _)| aa.get()).collect();
            for (i, &s) in scores.iter().enumerate() {
                if !included.contains(&(i as u32)) {
                    prop_assert!(AaScore(s) <= cutoff);
                }
            }
        }
    }

    #[test]
    fn topaa_round_trip_any_cache(
        scores in proptest::collection::vec(0u32..=100_000, 1..2000),
    ) {
        let n = scores.len();
        let cache = RaidAwareCache::new_full(
            scores.iter().map(|&s| AaScore(s)).collect(),
            vec![u32::MAX; n],
        ).unwrap();
        let block = topaa::serialize_raid_aware(&cache);
        let entries = topaa::deserialize_raid_aware(&block).unwrap();
        prop_assert_eq!(entries.len(), n.min(wafl_types::TOPAA_RAID_AWARE_ENTRIES));
        // Entries descend and match top_k.
        let expect = cache.top_k(wafl_types::TOPAA_RAID_AWARE_ENTRIES);
        prop_assert_eq!(entries, expect);
    }
}

// ---------------------------------------------------------------------
// HBPS vs a shadow multiset of scores
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum HbpsOp {
    ScoreChange(u32, u32),
    TakeBest,
}

fn hbps_op(n: u32, max: u32) -> impl Strategy<Value = HbpsOp> {
    prop_oneof![
        3 => (0..n, 0..=max).prop_map(|(aa, s)| HbpsOp::ScoreChange(aa, s)),
        1 => Just(HbpsOp::TakeBest),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hbps_histogram_tracks_all_aas_and_picks_within_one_bin(
        init in proptest::collection::vec(0u32..=3200, 20..300),
        ops in proptest::collection::vec(hbps_op(300, 3200), 1..300),
    ) {
        let cfg = HbpsConfig { max_score: 3200, bins: 32, list_capacity: 64 };
        let width = cfg.bin_width();
        let n = init.len() as u32;
        let mut hbps = Hbps::build(
            cfg,
            init.iter().enumerate().map(|(i, &s)| (AaId(i as u32), AaScore(s))),
        ).unwrap();
        let mut shadow: HashMap<u32, u32> = init
            .iter()
            .enumerate()
            .map(|(i, &s)| (i as u32, s))
            .collect();
        // AAs taken from the list but still tracked by the histogram.
        let mut taken: std::collections::HashSet<u32> = Default::default();
        for op in ops {
            match op {
                HbpsOp::ScoreChange(aa, new) => {
                    let aa = aa % n;
                    let old = shadow[&aa];
                    hbps.on_score_change(AaId(aa), AaScore(old), AaScore(new)).unwrap();
                    shadow.insert(aa, new);
                    // A score change may re-list a previously taken AA.
                    taken.remove(&aa);
                }
                HbpsOp::TakeBest => {
                    // The §3.3.2 background scan runs when takes have
                    // degraded the list; with it in the loop the error-
                    // margin guarantee must hold on every pick.
                    if hbps.needs_replenish(4) {
                        hbps.replenish(
                            shadow.iter().map(|(&k, &v)| (AaId(k), AaScore(v))),
                        ).unwrap();
                        taken.clear();
                    }
                    if let Some((aa, bound)) = hbps.take_best() {
                        let actual = shadow[&aa.get()];
                        // The bound is the upper edge of the AA's bin, and
                        // the pick is within one bin width of the true
                        // best among AAs not already handed out.
                        prop_assert!(actual <= bound.get());
                        let best_untaken = shadow
                            .iter()
                            .filter(|(k, _)| !taken.contains(k))
                            .map(|(_, &v)| v)
                            .max()
                            .unwrap_or(0);
                        prop_assert!(
                            actual + width >= best_untaken,
                            "picked {actual}, best untaken {best_untaken}"
                        );
                        taken.insert(aa.get());
                    }
                }
            }
            // Histogram counts all AAs regardless of list membership.
            prop_assert_eq!(hbps.tracked(), n as u64);
        }
        // Serialization round-trips whatever state we ended in.
        let (p1, p2) = hbps.to_pages();
        let back = Hbps::from_pages(&p1, &p2).unwrap();
        prop_assert_eq!(back.bin_counts(), hbps.bin_counts());
        prop_assert_eq!(back.list_len(), hbps.list_len());
    }
}
