//! High-availability failover scenario (§3.4): a partner node takes over
//! an aged aggregate and must restore client access fast. Compares the
//! TopAA-seeded mount against the full bitmap walk across growing
//! file-system sizes — the live version of Figure 10.
//!
//! Run with: `cargo run --release --example failover_mount`

use std::time::Instant;
use wafl_repro::fs::{aging, mount, Aggregate, AggregateConfig, FlexVolConfig, RaidGroupSpec};
use wafl_repro::media::MediaProfile;
use wafl_repro::types::VolumeId;

fn build(vol_pages: u64, vols: usize) -> Aggregate {
    let mut agg = Aggregate::new(
        AggregateConfig::single_group(RaidGroupSpec {
            data_devices: 4,
            parity_devices: 1,
            device_blocks: 32 * 4096,
            profile: MediaProfile::hdd(),
        }),
        &vec![
            (
                FlexVolConfig {
                    size_blocks: vol_pages * 32768,
                    aa_cache: true,
                    aa_blocks: None,
                },
                20_000,
            );
            vols
        ],
        3,
    )
    .unwrap();
    for v in 0..vols {
        aging::fill_volume(&mut agg, VolumeId(v as u32), 8192).unwrap();
    }
    agg
}

fn main() {
    println!(
        "{:>10} {:>6} | {:>14} {:>12} | {:>14} {:>12} | wall-clock",
        "vol pages", "vols", "TopAA blocks", "model µs", "walk blocks", "model µs"
    );
    for (vol_pages, vols) in [(4u64, 4usize), (8, 8), (16, 8), (16, 16)] {
        let mut agg = build(vol_pages, vols);
        let image = mount::save_topaa(&agg);

        mount::crash(&mut agg);
        let t = Instant::now();
        let fast = mount::mount_with_topaa(&mut agg, &image).unwrap();
        let fast_wall = t.elapsed();

        mount::crash(&mut agg);
        let t = Instant::now();
        let cold = mount::mount_cold(&mut agg).unwrap();
        let cold_wall = t.elapsed();

        println!(
            "{:>10} {:>6} | {:>14} {:>12.0} | {:>14} {:>12.0} | {:>8.2?} vs {:?}",
            vol_pages,
            vols,
            fast.metafile_blocks_read,
            fast.first_cp_ready_us,
            cold.metafile_blocks_read,
            cold.first_cp_ready_us,
            fast_wall,
            cold_wall,
        );

        // Prove the seeded node serves clients immediately.
        for l in 0..2000 {
            agg.client_overwrite(VolumeId(0), l).unwrap();
        }
        agg.run_cp().unwrap();
    }
    println!(
        "\nTopAA cost is 1 block per RAID group + 2 per volume — independent of \
         capacity;\nthe walk reads every bitmap page and grows with the file system \
         (Figure 10)."
    );
}
