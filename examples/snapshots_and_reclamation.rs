//! Snapshots and free-space reclamation: the COW mechanics around the
//! paper's free-block search. A snapshot pins old block versions through
//! heavy overwrite churn; deleting it releases them in a colocated burst
//! (§4.1.1's nonuniformity source), which the delayed-free processor then
//! applies metafile-page by metafile-page (§3.3.2's second HBPS use).
//!
//! Run with: `cargo run --release --example snapshots_and_reclamation`

use wafl_repro::fs::{aging, iron, Aggregate, AggregateConfig, FlexVolConfig, RaidGroupSpec};
use wafl_repro::media::MediaProfile;
use wafl_repro::types::VolumeId;

fn main() {
    let mut agg = Aggregate::new(
        AggregateConfig {
            batched_frees: true,
            free_pages_per_cp: 2,
            ..AggregateConfig::single_group(RaidGroupSpec {
                data_devices: 4,
                parity_devices: 1,
                device_blocks: 16 * 4096,
                profile: MediaProfile::hdd(),
            })
        },
        &[(
            FlexVolConfig {
                size_blocks: 8 * 32768,
                aa_cache: true,
                aa_blocks: None,
            },
            60_000,
        )],
        7,
    )
    .unwrap();
    let vol = VolumeId(0);
    aging::fill_volume(&mut agg, vol, 4096).unwrap();
    let occupied = |a: &Aggregate| a.bitmap().space_len() - a.bitmap().free_blocks();
    println!("filled    : {:>7} blocks live", occupied(&agg));

    let snap = agg.snapshot_create(vol).unwrap();
    println!("snapshot  : {snap} pins the current image");

    aging::random_overwrite_churn(&mut agg, vol, 30_000, 4096, 9).unwrap();
    println!(
        "churned   : {:>7} blocks occupied ({} old versions pinned by the snapshot)",
        occupied(&agg),
        agg.volumes()[0].detached_blocks()
    );

    let stats = agg.snapshot_delete(vol, snap).unwrap();
    println!(
        "delete    : releases {} blocks in one burst ({} still referenced)",
        stats.blocks_released, stats.blocks_still_referenced
    );

    // The delayed-free log drains a few metafile pages per CP, fullest
    // first — watch it shrink.
    let mut cps = 0;
    while agg.free_log().pending() > 0 {
        let cp = agg.run_cp().unwrap();
        cps += 1;
        if cp.delayed_frees_applied > 0 {
            println!(
                "reclaim CP: {:>6} frees applied across {} metafile pages \
                 ({} still pending)",
                cp.delayed_frees_applied,
                cp.delayed_free_pages,
                agg.free_log().pending()
            );
        }
    }
    println!(
        "drained   : {:>7} blocks live again after {cps} background CPs",
        occupied(&agg)
    );
    let report = iron::check(&agg).unwrap();
    println!(
        "iron      : {}",
        if report.is_clean() {
            "clean"
        } else {
            "FINDINGS"
        }
    );
}
