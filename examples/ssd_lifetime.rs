//! SSD lifetime scenario (§3.2.2): the same aged random-overwrite load on
//! two all-SSD aggregates — one with the historical HDD AA sizing
//! (smaller than an erase block), one with erase-block-multiple AAs —
//! and the resulting write-amplification difference. Lower WA means the
//! flash endures more client writes before wearing out.
//!
//! Run with: `cargo run --release --example ssd_lifetime`

use wafl_repro::fs::{aging, Aggregate, AggregateConfig, FlexVolConfig, RaidGroupSpec};
use wafl_repro::media::MediaProfile;
use wafl_repro::types::{AaSizingPolicy, VolumeId};

const ERASE_BLOCK: u64 = 512; // 2 MiB in 4 KiB pages

fn run(policy: AaSizingPolicy, label: &str) {
    let spec = RaidGroupSpec {
        data_devices: 4,
        parity_devices: 1,
        device_blocks: ERASE_BLOCK * 100,
        profile: MediaProfile::ssd(),
    };
    let agg_blocks = spec.data_blocks();
    let working_set = agg_blocks * 7 / 10;
    let mut agg = Aggregate::new(
        AggregateConfig {
            aa_policy_override: Some(policy),
            ..AggregateConfig::single_group(spec)
        },
        &[(
            FlexVolConfig {
                size_blocks: agg_blocks.div_ceil(32768) * 32768 * 2,
                aa_cache: true,
                aa_blocks: None,
            },
            working_set,
        )],
        1,
    )
    .unwrap();
    aging::fill_volume(&mut agg, VolumeId(0), 4096).unwrap();
    agg.reset_media_stats();
    // Sustained random overwrites — the enterprise LUN workload.
    aging::random_overwrite_churn(&mut agg, VolumeId(0), working_set * 2, 4096, 9).unwrap();
    let wa = agg.mean_write_amplification();
    println!(
        "{label:32} AA = {:5} stripes | write amplification {wa:.2} | \
         flash lifetime x{:.2} vs WA=2",
        agg.groups()[0].stripes_per_aa,
        2.0 / wa
    );
}

fn main() {
    println!("SSD endurance under aged random overwrites (70% full aggregate):\n");
    run(
        AaSizingPolicy::Stripes {
            stripes: ERASE_BLOCK / 2,
        },
        "HDD-sized AA (half erase block)",
    );
    run(
        AaSizingPolicy::DeviceUnits {
            unit_blocks: ERASE_BLOCK,
            units: 4,
        },
        "Erase-block-aware AA (4x)",
    );
    println!(
        "\nEmptier, erase-block-aligned AAs cluster invalidations so the FTL's \
         garbage collector\nfinds near-empty victims — the §3.2.2 mechanism that \
         let ONTAP ship lower-OP SSDs."
    );
}
