//! Imbalanced-aging scenario (§4.2): an aggregate grown over time has old,
//! fragmented RAID groups next to freshly added empty ones. Under an OLTP
//! load the write allocator should spread blocks evenly *within* equally
//! aged groups while biasing work toward the fresh ones — the live
//! version of Figure 7, plus segment cleaning (§3.3.1) rejuvenating an
//! aged group.
//!
//! Run with: `cargo run --release --example oltp_aging`

use wafl_repro::fs::{aging, cleaning, Aggregate, AggregateConfig, FlexVolConfig, RaidGroupSpec};
use wafl_repro::media::MediaProfile;
use wafl_repro::types::VolumeId;
use wafl_repro::workloads::{run, OltpMix};

fn main() {
    let spec = |_: usize| RaidGroupSpec {
        data_devices: 3,
        parity_devices: 1,
        device_blocks: 16 * 4096,
        profile: MediaProfile::hdd(),
    };
    let cfg = AggregateConfig {
        raid_groups: (0..4).map(spec).collect(),
        ..AggregateConfig::single_group(spec(0))
    };
    let working = cfg.total_data_blocks() / 8;
    let mut agg = Aggregate::new(
        cfg,
        &[(
            FlexVolConfig {
                size_blocks: 24 * 32768,
                aa_cache: true,
                aa_blocks: None,
            },
            working,
        )],
        5,
    )
    .unwrap();
    // RG0 and RG1 are the old groups: 50 % random occupancy.
    aging::seed_rg_random_occupancy(&mut agg, 0, 0.5, 101).unwrap();
    aging::seed_rg_random_occupancy(&mut agg, 1, 0.5, 102).unwrap();
    aging::fill_volume(&mut agg, VolumeId(0), 4096).unwrap();
    agg.reset_media_stats();

    // OLTP: random point reads and updates.
    let mut w = OltpMix::new(vec![(VolumeId(0), working)], 0.5, 31);
    let stats = run(&mut agg, &mut w, 100_000, 4096).unwrap();

    println!("blocks written per disk under OLTP (RG0/RG1 aged 50%, RG2/RG3 fresh):\n");
    for (i, rg) in stats.cp.per_rg.iter().enumerate() {
        let tag = if i < 2 { "aged " } else { "fresh" };
        let disks: Vec<String> = rg
            .per_device_blocks
            .iter()
            .map(|b| format!("{b:>7}"))
            .collect();
        println!(
            "  RG{i} ({tag}): disks [{}]  tetrises {:>5}  blocks/tetris {:>5.1}",
            disks.join(" "),
            rg.tetrises,
            rg.blocks as f64 / rg.tetrises.max(1) as f64
        );
    }

    // Segment-clean the most fragmented group and show its best AA recover.
    let before = agg.groups()[0].cache().unwrap().best().unwrap().1;
    let cstats = cleaning::clean_top_aas(&mut agg, 0, 4).unwrap();
    let after = agg.groups()[0].cache().unwrap().best().unwrap().1;
    println!(
        "\nsegment cleaning on RG0: {} AAs emptied, {} live blocks relocated,",
        cstats.aas_cleaned, cstats.blocks_relocated
    );
    println!(
        "best AA score {} -> {} (completely empty = {})",
        before,
        after,
        agg.groups()[0].stripes_per_aa * 3
    );
}
