//! Quickstart: build a small aggregate with one FlexVol, write and
//! overwrite data through consistency points, and watch the AA caches
//! steer allocation toward the emptiest regions.
//!
//! Run with: `cargo run --release --example quickstart`

use wafl_repro::fs::{aging, mount, Aggregate, AggregateConfig, FlexVolConfig, RaidGroupSpec};
use wafl_repro::media::MediaProfile;
use wafl_repro::types::VolumeId;

fn main() {
    // An aggregate of one RAID group: 4 data + 1 parity HDDs, 64 Ki
    // blocks (256 MiB) per device.
    let spec = RaidGroupSpec {
        data_devices: 4,
        parity_devices: 1,
        device_blocks: 16 * 4096,
        profile: MediaProfile::hdd(),
    };
    let mut agg = Aggregate::new(
        AggregateConfig::single_group(spec),
        &[(
            FlexVolConfig {
                size_blocks: 8 * 32768, // 1 GiB virtual space
                aa_cache: true,
                aa_blocks: None, // the paper's 32 Ki-VBN AAs
            },
            100_000, // client-visible blocks (~400 MiB LUN)
        )],
        42,
    )
    .expect("aggregate construction");
    let vol = VolumeId(0);

    // First write of some data, flushed as one consistency point.
    for logical in 0..10_000 {
        agg.client_overwrite(vol, logical).unwrap();
    }
    let cp = agg.run_cp().unwrap();
    println!(
        "first CP : {} blocks, {} metafile pages dirtied,",
        cp.blocks_written, cp.metafile_pages
    );
    println!(
        "           {:.0}% full-stripe writes (fresh AAs -> near 100%)",
        cp.full_stripe_fraction() * 100.0
    );

    // COW overwrites: new blocks allocated, old ones freed at the CP.
    for logical in 0..10_000 {
        agg.client_overwrite(vol, logical).unwrap();
    }
    let cp = agg.run_cp().unwrap();
    println!(
        "overwrite: {} blocks; free space conserved ({} blocks free)",
        cp.blocks_written,
        agg.bitmap().free_blocks()
    );

    // Fragment the free space, then compare cache-guided pick quality.
    aging::random_overwrite_churn(&mut agg, vol, 100_000, 4096, 7).unwrap();
    for logical in 0..4096 {
        agg.client_overwrite(vol, logical).unwrap();
    }
    let cp = agg.run_cp().unwrap();
    println!(
        "aged CP  : picked physical AAs {:.0}% free vs aggregate {:.0}% free — \
         the cache finds the empty regions",
        cp.agg_pick_free_mean() * 100.0,
        agg.free_fraction() * 100.0
    );

    // Persist the caches as TopAA metafiles, crash, and remount fast.
    let image = mount::save_topaa(&agg);
    mount::crash(&mut agg);
    let stats = mount::mount_with_topaa(&mut agg, &image).unwrap();
    println!(
        "failover : caches ready after reading only {} metafile blocks",
        stats.metafile_blocks_read
    );
    // Traffic flows immediately; the heap completes in the background.
    for logical in 0..1000 {
        agg.client_overwrite(vol, logical).unwrap();
    }
    agg.run_cp().unwrap();
    let pages = mount::complete_background_rebuild(&mut agg).unwrap();
    println!("           background rebuild walked {pages} bitmap pages afterwards");
}
