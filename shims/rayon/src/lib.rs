//! Offline stand-in for `rayon`.
//!
//! Exposes the parallel-iterator API subset the workspace uses —
//! `par_iter`, `par_iter_mut`, `into_par_iter`, and the `map`/`zip`/
//! `enumerate`/`reduce`/`collect` combinators — but executes
//! sequentially. Results are identical to rayon's (the workspace only
//! uses order-preserving adapters and associative reductions); only
//! wall-clock parallelism is lost, which the simulator's cost model
//! does not depend on.

/// A "parallel" iterator: a plain iterator wrapped so that rayon's
/// combinator signatures (notably the two-argument `reduce`) resolve.
pub struct Par<I>(I);

impl<I: Iterator> Par<I> {
    /// Map each item.
    pub fn map<R, F: FnMut(I::Item) -> R>(self, f: F) -> Par<std::iter::Map<I, F>> {
        Par(self.0.map(f))
    }

    /// Pair items with another parallel iterator.
    pub fn zip<J: Iterator>(self, other: Par<J>) -> Par<std::iter::Zip<I, J>> {
        Par(self.0.zip(other.0))
    }

    /// Pair items with their index.
    pub fn enumerate(self) -> Par<std::iter::Enumerate<I>> {
        Par(self.0.enumerate())
    }

    /// Rayon-style reduction: `identity` seeds each (here: the single)
    /// chunk, `op` combines.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// Collect into any `FromIterator` container.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }
}

/// `into_par_iter()` for owned collections and ranges.
pub trait IntoParallelIterator {
    /// Item type of the resulting iterator.
    type Item;
    /// Underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Par<Self::Iter>;
}

impl<T> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = std::vec::IntoIter<T>;
    fn into_par_iter(self) -> Par<Self::Iter> {
        Par(self.into_iter())
    }
}

macro_rules! impl_into_par_range {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = std::ops::Range<$t>;
            fn into_par_iter(self) -> Par<Self::Iter> {
                Par(self)
            }
        }
    )*};
}

impl_into_par_range!(u32, u64, usize, i32, i64);

/// `par_iter()` for shared slices (and, via deref, vecs and arrays).
pub trait IntoParallelRefIterator<'a> {
    /// Element type.
    type Item: 'a;
    /// Underlying sequential iterator.
    type Iter: Iterator<Item = &'a Self::Item>;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> Par<Self::Iter>;
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    type Iter = std::slice::Iter<'a, T>;
    fn par_iter(&'a self) -> Par<Self::Iter> {
        Par(self.iter())
    }
}

/// `par_iter_mut()` for unique slices (and, via deref, vecs).
pub trait IntoParallelRefMutIterator<'a> {
    /// Element type.
    type Item: 'a;
    /// Underlying sequential iterator.
    type Iter: Iterator<Item = &'a mut Self::Item>;
    /// Mutably borrowing parallel iterator.
    fn par_iter_mut(&'a mut self) -> Par<Self::Iter>;
}

impl<'a, T: 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = T;
    type Iter = std::slice::IterMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> Par<Self::Iter> {
        Par(self.iter_mut())
    }
}

/// The usual glob import.
pub mod prelude {
    pub use super::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, Par,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_over_range() {
        let v: Vec<u64> = (0u64..5).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn zip_enumerate_map_collect() {
        let mut a = vec![1u32, 2, 3];
        let b = [10u32, 20, 30];
        let out: Vec<u32> = a
            .par_iter_mut()
            .zip(b.par_iter())
            .enumerate()
            .map(|(i, (x, y))| {
                *x += y;
                *x + i as u32
            })
            .collect();
        assert_eq!(out, vec![11, 23, 35]);
        assert_eq!(a, vec![11, 22, 33]);
    }

    #[test]
    fn two_arg_reduce() {
        let data = [(1u64, 2u64), (3, 4), (5, 6)];
        let (a, b) = data
            .par_iter()
            .map(|&(x, y)| (x, y))
            .reduce(|| (0, 0), |p, q| (p.0 + q.0, p.1 + q.1));
        assert_eq!((a, b), (9, 12));
    }

    #[test]
    fn par_iter_on_fixed_array() {
        let configs = [(true, true), (false, true)];
        let n: Vec<usize> = configs.par_iter().enumerate().map(|(i, _)| i).collect();
        assert_eq!(n, vec![0, 1]);
    }
}
