//! Offline stand-in for `rayon`, backed by real OS threads.
//!
//! Exposes the parallel-iterator API subset the workspace uses —
//! `par_iter`, `par_iter_mut`, `into_par_iter`, and the `map`/`zip`/
//! `enumerate`/`reduce`/`collect`/`for_each` combinators. Unlike the
//! original sequential shim, `map` and `for_each` now fan their items
//! out over scoped OS threads when the host offers more than one core
//! (`std::thread::available_parallelism`, overridable with the
//! `RAYON_NUM_THREADS` environment variable rayon itself honours).
//! On a single-core host everything runs inline: no threads are
//! spawned and no overhead is paid.
//!
//! The execution model is eager: a parallel iterator materializes its
//! items up front, `map` splits them into one ordered chunk per worker,
//! and results are reassembled in input order. Results are therefore
//! identical to rayon's for the order-preserving adapters and
//! associative reductions the workspace uses, on any thread count.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker threads a parallel stage may use. Resolved once per process:
/// `RAYON_NUM_THREADS` if set and positive, otherwise the host's
/// available parallelism.
pub fn current_num_threads() -> usize {
    static CACHED: AtomicUsize = AtomicUsize::new(0);
    let cached = CACHED.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        });
    CACHED.store(n, Ordering::Relaxed);
    n
}

/// Apply `f` to every item on up to [`current_num_threads`] scoped
/// threads, preserving input order in the output. Runs inline when one
/// worker (or one item) makes threads pure overhead. Worker panics
/// propagate to the caller, like rayon's.
fn parallel_map<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = current_num_threads().min(items.len());
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let (base, extra) = (n / workers, n % workers);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut iter = items.into_iter();
    for w in 0..workers {
        let take = base + usize::from(w < extra);
        chunks.push(iter.by_ref().take(take).collect());
    }
    let results: Vec<Result<Vec<R>, _>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| s.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles.into_iter().map(|h| h.join()).collect()
    });
    let mut out = Vec::with_capacity(n);
    for r in results {
        match r {
            Ok(part) => out.extend(part),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
    out
}

/// A parallel iterator: the materialized items of the source, consumed
/// by an eager combinator chain.
pub struct Par<T>(Vec<T>);

impl<T: Send> Par<T> {
    /// Map each item, fanned out across worker threads.
    pub fn map<R, F>(self, f: F) -> Par<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        Par(parallel_map(self.0, &f))
    }

    /// Run `f` on every item, fanned out across worker threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        parallel_map(self.0, &|item| f(item));
    }

    /// Pair items with another parallel iterator (stops at the shorter).
    pub fn zip<U: Send>(self, other: Par<U>) -> Par<(T, U)> {
        Par(self.0.into_iter().zip(other.0).collect())
    }

    /// Pair items with their index.
    pub fn enumerate(self) -> Par<(usize, T)> {
        Par(self.0.into_iter().enumerate().collect())
    }

    /// Rayon-style reduction: `identity` seeds each chunk, `op`
    /// combines. The items were already computed by the upstream stages,
    /// so the fold itself is a cheap sequential pass.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T,
        OP: Fn(T, T) -> T,
    {
        self.0.into_iter().fold(identity(), op)
    }

    /// Collect into any `FromIterator` container.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.0.into_iter().collect()
    }
}

/// `into_par_iter()` for owned collections and ranges.
pub trait IntoParallelIterator {
    /// Item type of the resulting iterator.
    type Item: Send;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Par<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> Par<T> {
        Par(self)
    }
}

macro_rules! impl_into_par_range {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> Par<$t> {
                Par(self.collect())
            }
        }
    )*};
}

impl_into_par_range!(u32, u64, usize, i32, i64);

/// `par_iter()` for shared slices (and, via deref, vecs and arrays).
pub trait IntoParallelRefIterator<'a> {
    /// Element type.
    type Item: Sync + 'a;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> Par<&'a Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> Par<&'a T> {
        Par(self.iter().collect())
    }
}

/// `par_iter_mut()` for unique slices (and, via deref, vecs).
pub trait IntoParallelRefMutIterator<'a> {
    /// Element type.
    type Item: Send + 'a;
    /// Mutably borrowing parallel iterator.
    fn par_iter_mut(&'a mut self) -> Par<&'a mut Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> Par<&'a mut T> {
        Par(self.iter_mut().collect())
    }
}

/// The usual glob import.
pub mod prelude {
    pub use super::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, Par,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_over_range() {
        let v: Vec<u64> = (0u64..5).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn zip_enumerate_map_collect() {
        let mut a = vec![1u32, 2, 3];
        let b = [10u32, 20, 30];
        let out: Vec<u32> = a
            .par_iter_mut()
            .zip(b.par_iter())
            .enumerate()
            .map(|(i, (x, y))| {
                *x += y;
                *x + i as u32
            })
            .collect();
        assert_eq!(out, vec![11, 23, 35]);
        assert_eq!(a, vec![11, 22, 33]);
    }

    #[test]
    fn two_arg_reduce() {
        let data = [(1u64, 2u64), (3, 4), (5, 6)];
        let (a, b) = data
            .par_iter()
            .map(|&(x, y)| (x, y))
            .reduce(|| (0, 0), |p, q| (p.0 + q.0, p.1 + q.1));
        assert_eq!((a, b), (9, 12));
    }

    #[test]
    fn par_iter_on_fixed_array() {
        let configs = [(true, true), (false, true)];
        let n: Vec<usize> = configs.par_iter().enumerate().map(|(i, _)| i).collect();
        assert_eq!(n, vec![0, 1]);
    }

    #[test]
    fn order_preserved_at_any_item_count() {
        // Exercises the chunk split/reassembly (multiple items per worker,
        // uneven remainders) regardless of the host's core count.
        for n in [0usize, 1, 2, 3, 7, 64, 1000] {
            let v: Vec<usize> = (0..n)
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|x| x)
                .collect();
            assert_eq!(v, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn for_each_visits_every_item() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let sum = AtomicU64::new(0);
        (0u64..100).into_par_iter().for_each(|x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }
}
