//! Offline stand-in for the `rand` crate (0.10 API surface).
//!
//! Implements the subset the workspace uses — `StdRng::seed_from_u64`,
//! `Rng::{random_range, random_bool}`, `SliceRandom::shuffle`, and
//! `seq::index::sample` — over a xoshiro256++ core seeded via SplitMix64.
//! Deterministic for a given seed, which is all the simulator and tests
//! require; no `OsRng`, no `thread_rng`, no distributions.

/// Sources of randomness: the uniform primitives everything builds on.
pub trait RngCore {
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, expanded via SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open or inclusive range that `Rng::random_range` can sample.
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Uniform value from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (not the real
    /// `StdRng`'s ChaCha12 — cryptographic strength buys nothing in a
    /// simulator and the period/equidistribution are ample).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as rand_core does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, public domain reference).
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// In-place shuffling of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }

    /// Index sampling without replacement.
    pub mod index {
        use super::super::RngCore;

        /// The sampled indices, iterable as `usize`.
        #[derive(Clone, Debug)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// True when no indices were sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Iterate the indices.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }

            /// Extract the underlying vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Sample `amount` distinct indices from `0..length` (Floyd's
        /// algorithm), in random order.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} distinct indices from 0..{length}"
            );
            let mut chosen: std::collections::HashSet<usize> =
                std::collections::HashSet::with_capacity(amount);
            let mut out = Vec::with_capacity(amount);
            for j in length - amount..length {
                let t = (rng.next_u64() % (j as u64 + 1)) as usize;
                let pick = if chosen.contains(&t) { j } else { t };
                chosen.insert(pick);
                out.push(pick);
            }
            use super::SliceRandom;
            out.shuffle(rng);
            IndexVec(out)
        }
    }
}

/// The usual glob import: the traits plus `StdRng`, matching the real
/// crate's prelude.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::rngs::StdRng;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let i = rng.random_range(-500i32..500);
            assert!((-500..500).contains(&i));
            let u = rng.random_range(0u32..=5);
            assert!(u <= 5);
            let s = rng.random_range(0usize..3);
            assert!(s < 3);
        }
    }

    #[test]
    fn bool_probability_roughly_honoured() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }

    #[test]
    fn index_sample_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let picks = super::seq::index::sample(&mut rng, 1000, 100);
        assert_eq!(picks.len(), 100);
        let set: std::collections::HashSet<usize> = picks.iter().collect();
        assert_eq!(set.len(), 100, "indices must be distinct");
        assert!(picks.iter().all(|i| i < 1000));
    }
}
