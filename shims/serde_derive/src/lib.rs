//! Offline stand-in for `serde_derive`.
//!
//! Derives the shim `serde::Serialize` (JSON emission, externally-tagged
//! enum convention) and the marker `serde::Deserialize`. Parses the item
//! by walking the raw `TokenStream` — no `syn`/`quote` available offline —
//! which is sufficient because the workspace derives only on plain
//! non-generic structs and enums with no `#[serde(...)]` attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What a derive input parsed into.
enum Item {
    /// `struct S { a: T, b: U }`
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct S(T, U);` — field count only.
    TupleStruct { name: String, arity: usize },
    /// `struct S;`
    UnitStruct { name: String },
    /// `enum E { ... }`
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

impl Item {
    fn name(&self) -> &str {
        match self {
            Item::NamedStruct { name, .. }
            | Item::TupleStruct { name, .. }
            | Item::UnitStruct { name }
            | Item::Enum { name, .. } => name,
        }
    }
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Derive the JSON-emitting `Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::NamedStruct { fields, .. } => gen_named_fields_body(fields, "&self.", ""),
        Item::TupleStruct { arity: 1, .. } => {
            "serde::Serialize::serialize_json(&self.0, out);".to_string()
        }
        Item::TupleStruct { arity, .. } => {
            let mut b = String::from("out.push('[');\n");
            for i in 0..*arity {
                if i > 0 {
                    b.push_str("out.push(',');\n");
                }
                b.push_str(&format!(
                    "serde::Serialize::serialize_json(&self.{i}, out);\n"
                ));
            }
            b.push_str("out.push(']');");
            b
        }
        Item::UnitStruct { .. } => "out.push_str(\"null\");".to_string(),
        Item::Enum { name, variants } => gen_enum_body(name, variants),
    };
    let out = format!(
        "impl serde::Serialize for {} {{\n\
         fn serialize_json(&self, out: &mut String) {{\n{}\n}}\n}}",
        item.name(),
        body
    );
    out.parse().expect("generated Serialize impl parses")
}

/// Derive the no-op `Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    format!("impl serde::Deserialize for {} {{}}", item.name())
        .parse()
        .expect("generated Deserialize impl parses")
}

/// Emit statements serializing named fields as a JSON object.
/// `access` prefixes each field name (`&self.` for structs, `` for
/// match-bound struct-variant fields, which are already references).
fn gen_named_fields_body(fields: &[String], access: &str, indent: &str) -> String {
    let mut b = format!("{indent}out.push('{{');\n");
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            b.push_str(&format!("{indent}out.push(',');\n"));
        }
        b.push_str(&format!("{indent}out.push_str(\"\\\"{f}\\\":\");\n"));
        b.push_str(&format!(
            "{indent}serde::Serialize::serialize_json({access}{f}, out);\n"
        ));
    }
    b.push_str(&format!("{indent}out.push('}}');"));
    b
}

/// Emit the match over enum variants, externally tagged:
/// unit → `"Name"`, one-field tuple → `{"Name":v}`,
/// n-field tuple → `{"Name":[v0,…]}`, struct → `{"Name":{…}}`.
fn gen_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut b = String::from("match self {\n");
    for v in variants {
        let vn = &v.name;
        match &v.shape {
            VariantShape::Unit => {
                b.push_str(&format!(
                    "{name}::{vn} => {{ serde::write_json_string(\"{vn}\", out); }}\n"
                ));
            }
            VariantShape::Tuple(arity) => {
                let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                b.push_str(&format!("{name}::{vn}({}) => {{\n", binds.join(", ")));
                b.push_str("out.push('{');\n");
                b.push_str(&format!("serde::write_json_string(\"{vn}\", out);\n"));
                b.push_str("out.push(':');\n");
                if *arity == 1 {
                    b.push_str("serde::Serialize::serialize_json(f0, out);\n");
                } else {
                    b.push_str("out.push('[');\n");
                    for (i, bind) in binds.iter().enumerate() {
                        if i > 0 {
                            b.push_str("out.push(',');\n");
                        }
                        b.push_str(&format!("serde::Serialize::serialize_json({bind}, out);\n"));
                    }
                    b.push_str("out.push(']');\n");
                }
                b.push_str("out.push('}');\n}\n");
            }
            VariantShape::Struct(fields) => {
                b.push_str(&format!("{name}::{vn} {{ {} }} => {{\n", fields.join(", ")));
                b.push_str("out.push('{');\n");
                b.push_str(&format!("serde::write_json_string(\"{vn}\", out);\n"));
                b.push_str("out.push(':');\n");
                b.push_str(&gen_named_fields_body(fields, "", ""));
                b.push_str("\nout.push('}');\n}\n");
            }
        }
    }
    b.push('}');
    b
}

// ---- token-stream parsing ------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                // Possible pub(crate)/pub(super) restriction.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };
    match tokens.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde_derive shim does not support generic type `{name}`")
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kind == "enum" {
                Item::Enum {
                    name,
                    variants: parse_variants(g.stream()),
                }
            } else {
                Item::NamedStruct {
                    name,
                    fields: parse_named_fields(g.stream()),
                }
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            assert_eq!(kind, "struct", "parenthesized body on non-struct `{name}`");
            Item::TupleStruct {
                name,
                arity: count_tuple_fields(g.stream()),
            }
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
        other => panic!("unsupported item body for `{name}`: {other:?}"),
    }
}

/// Field names of `{ a: T, b: U }`, skipping attributes, visibility, and
/// types (tracking `<...>` depth so commas inside generics don't split).
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip per-field attributes and visibility.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tok) = tokens.next() else { break };
        let TokenTree::Ident(id) = tok else {
            panic!("expected field name, got {tok:?}")
        };
        fields.push(id.to_string());
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{id}`, got {other:?}"),
        }
        // Skip the type: everything up to a comma at angle depth 0.
        let mut angle: i32 = 0;
        let mut prev = ' ';
        for tok in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                let c = p.as_char();
                match c {
                    '<' => angle += 1,
                    // Don't count the `>` of `->` as closing an angle.
                    '>' if prev != '-' => angle -= 1,
                    ',' if angle == 0 => break,
                    _ => {}
                }
                prev = c;
            } else {
                prev = ' ';
            }
        }
    }
    fields
}

/// Count fields of a tuple struct/variant body (angle-depth aware).
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_any = false;
    let mut angle: i32 = 0;
    let mut prev = ' ';
    for tok in body {
        saw_any = true;
        if let TokenTree::Punct(p) = &tok {
            let c = p.as_char();
            match c {
                '<' => angle += 1,
                '>' if prev != '-' => angle -= 1,
                ',' if angle == 0 => count += 1,
                _ => {}
            }
            prev = c;
        } else {
            prev = ' ';
        }
    }
    // `(T, U)` has one top-level comma and two fields; a trailing comma
    // `(T, U,)` would overcount, but none appear in this workspace.
    if saw_any {
        count + 1
    } else {
        0
    }
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip per-variant attributes.
        while let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '#' {
                tokens.next();
                tokens.next();
            } else {
                break;
            }
        }
        let Some(tok) = tokens.next() else { break };
        let TokenTree::Ident(id) = tok else {
            panic!("expected variant name, got {tok:?}")
        };
        let name = id.to_string();
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                tokens.next();
                VariantShape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                VariantShape::Struct(fields)
            }
            _ => VariantShape::Unit,
        };
        variants.push(Variant { name, shape });
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        for tok in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
    }
    variants
}
