//! Offline stand-in for `criterion`.
//!
//! Keeps `wafl-bench` compiling and runnable without crates.io: each
//! benchmark runs a short warm-up plus a fixed measurement loop and
//! prints the mean per-iteration time. No statistics, HTML reports, or
//! comparison against saved baselines — use real criterion for serious
//! numbers; this exists so `cargo bench` stays exercisable offline and
//! the benches keep compiling under `cargo check`/`clippy`.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 3;
const MEASURE_ITERS: u64 = 30;

/// Smoke mode: `cargo bench -- --test` (real criterion's "compile and
/// run once" flag). Every benchmark executes a single untimed iteration
/// so CI can prove the benches still run without paying measurement
/// time.
fn smoke_mode() -> bool {
    static SMOKE: OnceLock<bool> = OnceLock::new();
    *SMOKE.get_or_init(|| std::env::args().any(|a| a == "--test"))
}

/// Benchmark registry/driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Criterion {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(id, None);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Accepted for API compatibility; configuration is fixed.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Called by `criterion_main!` after all groups ran.
    pub fn final_summary(&self) {}
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Set the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut BenchmarkGroup {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut BenchmarkGroup {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id), self.throughput.as_ref());
        self
    }

    /// Run a parameterized benchmark in this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut BenchmarkGroup {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.0), self.throughput.as_ref());
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }
}

/// Units of work per iteration, echoed in the report.
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// How `iter_batched` amortizes setup.
pub enum BatchSize {
    /// Setup once per small batch of iterations.
    LargeInput,
    /// Setup before every iteration.
    PerIteration,
    /// Setup once per large batch of iterations.
    SmallInput,
}

/// Timer handed to each benchmark closure.
#[derive(Default)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine` over the fixed iteration budget.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if smoke_mode() {
            black_box(routine());
            self.iters += 1;
            return;
        }
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(routine());
        }
        self.total += start.elapsed();
        self.iters += MEASURE_ITERS;
    }

    /// Time `routine` with untimed per-iteration `setup`.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        if smoke_mode() {
            let input = setup();
            black_box(routine(input));
            self.iters += 1;
            return;
        }
        for _ in 0..WARMUP_ITERS {
            let input = setup();
            black_box(routine(input));
        }
        for _ in 0..MEASURE_ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    fn report(&self, id: &str, throughput: Option<&Throughput>) {
        if smoke_mode() {
            println!("{id:<50} ok (smoke: 1 iteration, untimed)");
            return;
        }
        if self.iters == 0 {
            println!("{id:<50} (no iterations recorded)");
            return;
        }
        let per_iter = self.total.as_secs_f64() / self.iters as f64;
        let rate = match throughput {
            Some(Throughput::Bytes(b)) => {
                format!("  {:>10.1} MiB/s", *b as f64 / per_iter / (1 << 20) as f64)
            }
            Some(Throughput::Elements(e)) => {
                format!("  {:>10.0} elem/s", *e as f64 / per_iter)
            }
            None => String::new(),
        };
        println!("{id:<50} {:>12.3} us/iter{rate}", per_iter * 1e6);
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_and_group_run() {
        let mut c = Criterion::default();
        c.bench_function("shim/add", |b| b.iter(|| black_box(1u64) + 1));
        let mut g = c.benchmark_group("shim/group");
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &n| {
            b.iter_batched(
                || vec![0u8; n as usize],
                |v| v.len(),
                BatchSize::PerIteration,
            )
        });
        g.finish();
    }
}
