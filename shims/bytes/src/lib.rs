//! Offline stand-in for the `bytes` crate.
//!
//! The container this workspace builds in has no access to crates.io, so
//! every external dependency is replaced by a local shim exposing exactly
//! the API surface the workspace uses (see `shims/README.md`). Here that
//! is cursor-style little-endian reads/writes over byte slices — the
//! subset the TopAA/HBPS serializers need.

/// Read cursor over a shrinking `&[u8]`.
pub trait Buf {
    /// Remaining readable bytes.
    fn remaining(&self) -> usize;
    /// Pop `n` bytes off the front.
    fn advance(&mut self, n: usize);
    /// Copy out the next `N`-byte array and advance.
    fn take_array<const N: usize>(&mut self) -> [u8; N];

    /// Read a little-endian `u32` and advance.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }

    /// Read a little-endian `u64` and advance.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }

    /// Read one byte and advance.
    fn get_u8(&mut self) -> u8 {
        self.take_array::<1>()[0]
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        let (head, tail) = self.split_at(N);
        *self = tail;
        head.try_into().expect("split_at returned N bytes")
    }
}

/// Write cursor over a shrinking `&mut [u8]`.
pub trait BufMut {
    /// Remaining writable bytes.
    fn remaining_mut(&self) -> usize;
    /// Write `src` at the front and advance past it.
    fn put_slice(&mut self, src: &[u8]);

    /// Write a little-endian `u32` and advance.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `u64` and advance.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Write one byte and advance.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

impl BufMut for &mut [u8] {
    fn remaining_mut(&self) -> usize {
        self.len()
    }

    fn put_slice(&mut self, src: &[u8]) {
        let (head, tail) = std::mem::take(self).split_at_mut(src.len());
        head.copy_from_slice(src);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_u32_u64() {
        let mut block = [0u8; 16];
        let mut w = &mut block[..];
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(0x0123_4567_89AB_CDEF);
        w.put_u32_le(7);
        assert_eq!(w.remaining_mut(), 0);
        let mut r = &block[..];
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_u32_le(), 7);
        assert_eq!(r.remaining(), 0);
    }
}
