//! Offline stand-in for `serde_json`.
//!
//! The workspace's only use is `to_string_pretty` on derive-serialized
//! result structs, so this shim serializes compactly via the shim
//! `serde::Serialize` trait and then re-indents (2 spaces, like real
//! serde_json's pretty printer).

use std::fmt;

/// Serialization error. The shim's emitter is infallible, so this is
/// never constructed; it exists so call sites can keep `?`/`Result`
/// plumbing unchanged.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("json serialization error")
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as pretty-printed JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut compact = String::new();
    value.serialize_json(&mut compact);
    Ok(pretty(&compact))
}

/// Serialize `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut compact = String::new();
    value.serialize_json(&mut compact);
    Ok(compact)
}

/// Re-indent compact JSON with two-space indentation. Walks the text
/// tracking string/escape state, so braces inside strings are untouched.
fn pretty(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let push_indent = |out: &mut String, n: usize| {
        for _ in 0..n {
            out.push_str("  ");
        }
    };
    let mut chars = compact.chars().peekable();
    while let Some(c) = chars.next() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                let close = if c == '{' { '}' } else { ']' };
                if chars.peek() == Some(&close) {
                    // Keep empty containers on one line.
                    out.push(c);
                    out.push(close);
                    chars.next();
                } else {
                    out.push(c);
                    indent += 1;
                    out.push('\n');
                    push_indent(&mut out, indent);
                }
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                out.push('\n');
                push_indent(&mut out, indent);
                out.push(c);
            }
            ',' => {
                out.push(c);
                out.push('\n');
                push_indent(&mut out, indent);
            }
            ':' => {
                out.push(c);
                out.push(' ');
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn pretty_prints_nested_objects() {
        let got = super::pretty(r#"{"a":1,"b":[1,2],"c":{"d":"x,{}","e":[]}}"#);
        let want = "{\n  \"a\": 1,\n  \"b\": [\n    1,\n    2\n  ],\n  \"c\": {\n    \"d\": \"x,{}\",\n    \"e\": []\n  }\n}";
        assert_eq!(got, want);
    }

    #[test]
    fn to_string_pretty_via_trait() {
        let v = vec![1u32, 2];
        assert_eq!(super::to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
        assert_eq!(super::to_string(&v).unwrap(), "[1,2]");
    }
}
