//! Offline stand-in for `serde`.
//!
//! The workspace only ever serializes (via `serde_json::to_string_pretty`)
//! and never deserializes, so this shim collapses serde's data model to a
//! single JSON-emitting method. `Serialize` writes compact JSON straight
//! into a `String`; `Deserialize` is a no-op marker so existing
//! `#[derive(Serialize, Deserialize)]` lines keep compiling unchanged.

pub use serde_derive::{Deserialize, Serialize};

/// JSON-emitting serialization.
pub trait Serialize {
    /// Append `self` as compact JSON to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// No-op marker kept so `#[derive(Deserialize)]` and trait bounds still
/// compile; nothing in the workspace parses JSON back.
pub trait Deserialize {}

macro_rules! impl_serialize_display_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                // `to_string` on integers is already valid JSON.
                out.push_str(&self.to_string());
            }
        }
        impl Deserialize for $t {}
    )*};
}

impl_serialize_display_num!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                if self.is_finite() {
                    let s = self.to_string();
                    out.push_str(&s);
                    // `5f64.to_string()` is "5"; keep it a JSON number
                    // either way (integers are valid), so nothing to fix.
                } else {
                    // Real serde_json errors on non-finite floats; the
                    // harness only emits measured durations/counts, so
                    // map the pathological case to null instead.
                    out.push_str("null");
                }
            }
        }
        impl Deserialize for $t {}
    )*};
}

impl_serialize_float!(f32, f64);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}
impl Deserialize for bool {}

/// Escape and quote `s` per JSON.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}
impl Deserialize for String {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

fn write_json_seq<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>, out: &mut String) {
    out.push('[');
    let mut first = true;
    for item in items {
        if !first {
            out.push(',');
        }
        first = false;
        item.serialize_json(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        write_json_seq(self.iter(), out);
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        write_json_seq(self.iter(), out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        write_json_seq(self.iter(), out);
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$idx.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {}
    )*};
}

impl_serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: AsRef<str>, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_json(&self, out: &mut String) {
        out.push('{');
        let mut first = true;
        for (k, v) in self {
            if !first {
                out.push(',');
            }
            first = false;
            write_json_string(k.as_ref(), out);
            out.push(':');
            v.serialize_json(out);
        }
        out.push('}');
    }
}

impl<K: AsRef<str>, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn serialize_json(&self, out: &mut String) {
        // Sort keys so output is deterministic across runs.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.as_ref().cmp(b.0.as_ref()));
        out.push('{');
        let mut first = true;
        for (k, v) in entries {
            if !first {
                out.push(',');
            }
            first = false;
            write_json_string(k.as_ref(), out);
            out.push(':');
            v.serialize_json(out);
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::Serialize;

    fn json<T: Serialize>(v: &T) -> String {
        let mut s = String::new();
        v.serialize_json(&mut s);
        s
    }

    #[test]
    fn primitives() {
        assert_eq!(json(&42u64), "42");
        assert_eq!(json(&-7i32), "-7");
        assert_eq!(json(&true), "true");
        assert_eq!(json(&1.5f64), "1.5");
        assert_eq!(json(&f64::NAN), "null");
        assert_eq!(json(&"a\"b\n".to_string()), r#""a\"b\n""#);
    }

    #[test]
    fn containers() {
        assert_eq!(json(&vec![1u32, 2, 3]), "[1,2,3]");
        assert_eq!(json(&Some(5u8)), "5");
        assert_eq!(json(&Option::<u8>::None), "null");
        assert_eq!(json(&(1u8, "x".to_string())), r#"[1,"x"]"#);
    }
}
