//! Offline stand-in for `proptest`.
//!
//! Supports the subset the workspace's property tests use: integer-range
//! and tuple strategies, `prop_map`, `Just`, `prop_oneof!` (weighted and
//! unweighted), `proptest::collection::{vec, hash_set}`, and the
//! `proptest!`/`prop_assert!`/`prop_assert_eq!` macros with
//! `ProptestConfig::with_cases`. Cases are generated from a seed derived
//! deterministically from the test's module path and name, so failures
//! reproduce run-to-run. No shrinking: a failing case panics with the
//! generated inputs visible via the assertion message instead of being
//! minimized. That loses convenience, not coverage.

/// Deterministic case generation.
pub mod test_runner {
    /// SplitMix64 generator driving all strategies.
    pub struct TestRng(u64);

    impl TestRng {
        /// Construct from an explicit seed.
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng(seed)
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Seed for `case` of the test identified by `name` (FNV-1a over the
    /// name, mixed with the case index).
    pub fn case_seed(name: &str, case: u32) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^ ((case as u64) << 32 | case as u64)
    }

    /// How many cases each property runs.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` cases (the `#![proptest_config(...)]` knob).
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            // Real proptest's default; these tests are cheap enough.
            ProptestConfig { cases: 256 }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// One weighted arm of a [`Union`].
    type UnionArm<V> = (u32, Box<dyn Fn(&mut TestRng) -> V>);

    /// Weighted choice between strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<UnionArm<V>>,
    }

    impl<V> Union<V> {
        /// A union with no arms yet; `prop_oneof!` adds them.
        pub fn empty() -> Union<V> {
            Union { arms: Vec::new() }
        }

        /// Add an arm with the given relative weight.
        pub fn arm<S>(mut self, weight: u32, strat: S) -> Union<V>
        where
            S: Strategy<Value = V> + 'static,
        {
            assert!(weight > 0, "prop_oneof weights must be positive");
            self.arms
                .push((weight, Box::new(move |rng| strat.generate(rng))));
            self
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one arm");
            let mut pick = rng.next_u64() % total;
            for (w, gen_fn) in &self.arms {
                if pick < *w as u64 {
                    return gen_fn(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick within total")
        }
    }

    macro_rules! impl_strategy_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty strategy range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (start as i128 + v as i128) as $t
                }
            }
        )*};
    }

    impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_strategy_tuple {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_strategy_tuple! {
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Element-count bounds for collection strategies.
    pub struct SizeRange(std::ops::Range<usize>);

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange(r)
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange(*r.start()..r.end() + 1)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange(n..n + 1)
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let span = (self.0.end - self.0.start) as u64;
            self.0.start + (rng.next_u64() % span) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>`; duplicates may make the set
    /// smaller than the drawn length (real proptest retries — the
    /// workspace only uses sizes as loose bounds, so this is fine).
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::hash_set`.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: std::hash::Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: std::hash::Hash + Eq,
    {
        type Value = std::collections::HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual glob import for property tests.
pub mod prelude {
    pub use super::strategy::{Just, Strategy};
    pub use super::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Run each property as seeded cases (no shrinking; see crate docs).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($items:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($items)* }
    };
    ($($items:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($items)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),* $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::from_seed(
                        $crate::test_runner::case_seed(
                            concat!(module_path!(), "::", stringify!($name)),
                            __case,
                        ),
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __rng,
                        );
                    )*
                    $body
                }
            }
        )*
    };
}

/// Weighted (`w => strat`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {{
        let __u = $crate::strategy::Union::empty();
        $(let __u = __u.arm($weight, $strat);)+
        __u
    }};
    ($($strat:expr),+ $(,)?) => {{
        let __u = $crate::strategy::Union::empty();
        $(let __u = __u.arm(1, $strat);)+
        __u
    }};
}

/// Assert inside a property (panics; no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = u32> {
        prop_oneof![
            3 => (0u32..10, 0u32..10).prop_map(|(a, b)| a + b),
            1 => Just(99u32),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_maps_compose(
            x in 5u64..100,
            pair in (0i32..3, 10usize..=12),
            v in crate::collection::vec(0u32..50, 1..8),
            s in crate::collection::hash_set(0u8..=200, 0..20),
            y in small(),
        ) {
            prop_assert!((5..100).contains(&x));
            prop_assert!((0..3).contains(&pair.0));
            prop_assert!((10..=12).contains(&pair.1));
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&e| e < 50));
            prop_assert!(s.len() < 20);
            prop_assert!(y < 19 || y == 99, "oneof arms only: {}", y);
        }
    }

    #[test]
    fn seeds_are_deterministic() {
        let a = crate::test_runner::case_seed("m::t", 3);
        let b = crate::test_runner::case_seed("m::t", 3);
        assert_eq!(a, b);
        assert_ne!(a, crate::test_runner::case_seed("m::t", 4));
        assert_ne!(a, crate::test_runner::case_seed("m::u", 3));
    }
}
